"""End-to-end integration tests across the whole stack.

These train real (small) models on generated data and assert learning
outcomes, not just plumbing.
"""

import numpy as np
import pytest

from repro.core import GMLFM, GMLFM_DNN
from repro.data import NegativeSampler, make_dataset
from repro.models import FactorizationMachine
from repro.training import (
    TrainConfig,
    Trainer,
    build_rating_instances,
    evaluate_rating,
    evaluate_topn,
    prepare_topn_protocol,
)


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("amazon-auto", seed=3, scale=0.4)


@pytest.fixture(scope="module")
def topn_protocol(dataset):
    return prepare_topn_protocol(dataset, n_candidates=50, seed=0)


def _train_topn(model, dataset, train_index, epochs=15, lr=0.02, seed=0):
    train_view = dataset.subset(train_index)
    sampler = NegativeSampler(train_view, seed=seed)
    users, items, labels = sampler.build_pointwise_training_set(
        np.arange(train_view.n_interactions), n_neg=2
    )
    trainer = Trainer(model, TrainConfig(epochs=epochs, lr=lr,
                                         weight_decay=1e-4, seed=seed))
    trainer.fit_pointwise(users, items, labels)
    return model


class TestTopNLearning:
    def test_training_improves_over_untrained(self, dataset, topn_protocol):
        train_index, test_users, _items, candidates = topn_protocol
        untrained = GMLFM_DNN(dataset, k=16, rng=np.random.default_rng(0))
        before = evaluate_topn(untrained, dataset, test_users, candidates)
        trained = _train_topn(
            GMLFM_DNN(dataset, k=16, rng=np.random.default_rng(0)),
            dataset, train_index,
        )
        after = evaluate_topn(trained, dataset, test_users, candidates)
        assert after.hr > before.hr + 0.05
        assert after.ndcg > before.ndcg

    def test_model_beats_random_ranking(self, dataset, topn_protocol):
        train_index, test_users, _items, candidates = topn_protocol
        model = _train_topn(
            FactorizationMachine(dataset, k=16, rng=np.random.default_rng(0)),
            dataset, train_index, lr=0.03,
        )
        result = evaluate_topn(model, dataset, test_users, candidates)
        # Random ranking: HR@10 ≈ 10/51 ≈ 0.20.
        assert result.hr > 0.30


class TestRatingLearning:
    def test_training_beats_constant_predictor(self, dataset):
        instances = build_rating_instances(dataset, seed=0)
        model = GMLFM_DNN(dataset, k=16, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=20, lr=0.02,
                                             weight_decay=1e-4, patience=4,
                                             seed=0))
        users, items, labels = instances.split("train")
        trainer.fit_pointwise(
            users, items, labels,
            validate=lambda m: evaluate_rating(m, instances).valid_rmse,
            higher_is_better=False,
        )
        result = evaluate_rating(model, instances)
        # Constant-0 prediction gives RMSE exactly 1.0 on ±1 labels.
        assert result.test_rmse < 0.99


class TestTransformationWeightEffect:
    def test_weight_helps_on_sparse_data(self):
        """The paper's central ablation at test scale: the transformation
        weight lifts HR on sparse data (Table 5's most dramatic row)."""
        dataset = make_dataset("mercari-ticket", seed=1, scale=0.25)
        train_index, test_users, _items, candidates = prepare_topn_protocol(
            dataset, n_candidates=50, seed=0
        )
        with_weight = _train_topn(
            GMLFM(dataset, k=16, transform="mahalanobis", init_std=0.1,
                  rng=np.random.default_rng(0)),
            dataset, train_index, lr=0.01,
        )
        without_weight = _train_topn(
            GMLFM(dataset, k=16, transform="mahalanobis", use_weight=False,
                  init_std=0.1, rng=np.random.default_rng(0)),
            dataset, train_index, lr=0.01,
        )
        hr_with = evaluate_topn(with_weight, dataset, test_users, candidates).hr
        hr_without = evaluate_topn(without_weight, dataset, test_users,
                                   candidates).hr
        assert hr_with > hr_without


class TestFieldSelectionPipeline:
    def test_attribute_subset_trains_end_to_end(self):
        dataset = make_dataset("mercari-ticket", seed=0, scale=0.25)
        view = dataset.select_fields(["category"])
        assert view.n_features < dataset.n_features
        train_index, test_users, _items, candidates = prepare_topn_protocol(
            view, n_candidates=30, seed=0
        )
        model = _train_topn(
            GMLFM_DNN(view, k=8, rng=np.random.default_rng(0)),
            view, train_index, epochs=8,
        )
        result = evaluate_topn(model, view, test_users, candidates)
        assert 0.0 <= result.hr <= 1.0


class TestReproducibility:
    def test_full_pipeline_is_deterministic(self, dataset, topn_protocol):
        train_index, test_users, _items, candidates = topn_protocol

        def run():
            model = _train_topn(
                GMLFM_DNN(dataset, k=8, rng=np.random.default_rng(7)),
                dataset, train_index, epochs=5,
            )
            result = evaluate_topn(model, dataset, test_users, candidates)
            return result.hr, result.ndcg

        assert run() == run()
