"""Golden-value determinism regression over the full model registry.

Every registry model trains once on a tiny seeded corpus and its
evaluation metric is asserted against a checked-in golden.  The runner
contract says each cell is a pure function of ``(model, dataset, scale,
seed)``; these goldens turn that contract into a regression test, so a
refactor that silently perturbs any RNG stream (sampler draw order,
init order, shuffle order — cf. the PR 2 sampler rewrite) or the
arithmetic of a training step fails loudly instead of drifting paper
tables.

Regenerate after an *intentional* stream change with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py

and commit the diff of ``tests/goldens/registry_metrics.json`` — the
review diff then shows exactly which models moved and by how much.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.configs import ExperimentScale
from repro.experiments.registry import RATING_MODELS, TOPN_MODELS
from repro.experiments.runner import run_rating_cell, run_topn_cell
from tests.helpers import make_tiny_dataset

GOLDEN_PATH = Path(__file__).parent / "goldens" / "registry_metrics.json"

#: Tiny but real: 2 epochs, k=4, ~45 interactions — every model's full
#: train/eval stack runs in well under a second.
TINY = ExperimentScale(name="golden", epochs=2, k=4, dataset_scale=1.0,
                       n_candidates=8, n_seeds=1)
SEED = 11

#: Train each model exactly once: the rating task covers the ten
#: rating models, the top-n task the three ranking-only ones.
TOPN_ONLY = [name for name in TOPN_MODELS if name not in RATING_MODELS]

#: Bitwise reproducibility is the contract on one environment; the
#: loose relative tolerance only forgives last-bits BLAS reassociation
#: across numpy builds, while any RNG-stream change moves metrics at
#: the 1e-2 scale and trips it by many orders of magnitude.
RTOL = 1e-7


def compute_golden(name: str) -> dict:
    dataset = make_tiny_dataset(seed=SEED)
    if name in TOPN_ONLY:
        hr, ndcg = run_topn_cell(name, dataset, scale=TINY, seed=SEED)
        return {"task": "topn", "hr": hr, "ndcg": ndcg}
    rmse = run_rating_cell(name, dataset, scale=TINY, seed=SEED)
    return {"task": "rating", "rmse": rmse}


def load_goldens() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def goldens():
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        computed = {name: compute_golden(name)
                    for name in RATING_MODELS + TOPN_ONLY}
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(computed, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return computed
    if not GOLDEN_PATH.exists():
        pytest.fail(f"{GOLDEN_PATH} missing; regenerate with "
                    "REPRO_UPDATE_GOLDENS=1")
    return load_goldens()


def test_goldens_cover_the_whole_registry(goldens):
    assert sorted(goldens) == sorted(set(RATING_MODELS) | set(TOPN_MODELS))


@pytest.mark.parametrize("name", RATING_MODELS + TOPN_ONLY)
def test_registry_model_matches_golden(name, goldens):
    golden = goldens[name]
    got = compute_golden(name)
    assert got["task"] == golden["task"]
    for metric in ("rmse", "hr", "ndcg"):
        if metric not in golden:
            continue
        assert got[metric] == pytest.approx(golden[metric], rel=RTOL), (
            f"{name} {metric} drifted: {got[metric]!r} vs golden "
            f"{golden[metric]!r} — an RNG stream or training-step "
            f"change reached the runners; if intentional, regenerate "
            f"with REPRO_UPDATE_GOLDENS=1")
