"""Test package."""
