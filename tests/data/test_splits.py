"""Tests for random and leave-one-out splits."""

import numpy as np
import pytest

from repro.data.splits import leave_one_out_split, random_split
from tests.helpers import make_tiny_dataset


class TestRandomSplit:
    def test_partition_is_complete_and_disjoint(self):
        ds = make_tiny_dataset()
        train, valid, test = random_split(ds, seed=0)
        merged = np.concatenate([train, valid, test])
        assert merged.size == ds.n_interactions
        assert len(np.unique(merged)) == ds.n_interactions

    def test_ratios_respected(self):
        ds = make_tiny_dataset(n_users=40, n_items=60)
        train, valid, test = random_split(ds, ratios=(0.5, 0.3, 0.2), seed=0)
        n = ds.n_interactions
        assert abs(train.size / n - 0.5) < 0.05
        assert abs(valid.size / n - 0.3) < 0.05

    def test_reproducible(self):
        ds = make_tiny_dataset()
        a = random_split(ds, seed=5)
        b = random_split(ds, seed=5)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_seed_changes_split(self):
        ds = make_tiny_dataset()
        a, _, _ = random_split(ds, seed=1)
        b, _, _ = random_split(ds, seed=2)
        assert not np.array_equal(a, b)

    def test_invalid_ratios(self):
        ds = make_tiny_dataset()
        with pytest.raises(ValueError):
            random_split(ds, ratios=(0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            random_split(ds, ratios=(0.5, 0.5))


class TestLeaveOneOut:
    def test_one_test_row_per_eligible_user(self):
        ds = make_tiny_dataset()
        _train, test = leave_one_out_split(ds)
        test_users = ds.users[test]
        assert len(np.unique(test_users)) == test_users.size
        eligible = (ds.interactions_per_user() >= 2).sum()
        assert test_users.size == eligible

    def test_held_out_is_latest(self):
        ds = make_tiny_dataset()
        _train, test = leave_one_out_split(ds)
        for row in test:
            u = ds.users[row]
            user_times = ds.timestamps[ds.users == u]
            assert ds.timestamps[row] == user_times.max()

    def test_partition(self):
        ds = make_tiny_dataset()
        train, test = leave_one_out_split(ds)
        merged = np.concatenate([train, test])
        assert len(np.unique(merged)) == ds.n_interactions

    def test_single_interaction_user_stays_in_train(self):
        from repro.data.dataset import RecDataset
        ds = RecDataset(
            "x", 2, 3,
            users=np.array([0, 0, 1]),
            items=np.array([0, 1, 2]),
            timestamps=np.array([10, 20, 5]),
        )
        train, test = leave_one_out_split(ds)
        assert test.size == 1           # only user 0 is eligible
        assert ds.users[test[0]] == 0
        assert ds.timestamps[test[0]] == 20
        assert train.size == 2
