"""InteractionLog growth/snapshots and seeded event replay."""

import numpy as np
import pytest

from repro.data.streaming import (
    InteractionLog,
    prequential_split,
    replay_events,
    replay_order,
)
from tests.helpers import make_tiny_dataset

pytestmark = pytest.mark.streaming


class TestInteractionLog:
    def test_append_and_views(self):
        log = InteractionLog(n_users=4, n_items=6, capacity=2)
        event = log.append(1, 3)
        assert (event.user, event.item, event.timestamp) == (1, 3, 0)
        log.append(2, 5, timestamp=17)
        assert len(log) == 2
        np.testing.assert_array_equal(log.users, [1, 2])
        np.testing.assert_array_equal(log.items, [3, 5])
        np.testing.assert_array_equal(log.timestamps, [0, 17])

    def test_auto_timestamps_continue_the_clock(self):
        log = InteractionLog(n_users=4, n_items=6)
        log.append(0, 0, timestamp=41)
        event = log.append(1, 1)
        assert event.timestamp == 42
        assigned = log.extend([2, 3], [2, 3])
        np.testing.assert_array_equal(assigned, [43, 44])

    def test_auto_timestamps_after_out_of_order_ingest(self):
        """The clock continues from the max, not the last-stored value,
        so auto-stamped events replay after everything already seen."""
        log = InteractionLog(n_users=4, n_items=6)
        log.extend([0, 1], [0, 1], timestamps=[10, 3])
        event = log.append(2, 2)
        assert event.timestamp == 11

    def test_chunked_growth_doubles_capacity(self):
        log = InteractionLog(n_users=10, n_items=10, capacity=2)
        for i in range(9):
            log.append(i % 10, i % 10)
        assert len(log) == 9
        # 2 -> 4 -> 8 -> 16: doubling, not per-append reallocation.
        assert log.capacity == 16
        np.testing.assert_array_equal(log.users, np.arange(9) % 10)

    def test_views_are_read_only(self):
        log = InteractionLog(n_users=4, n_items=4)
        log.append(1, 2)
        with pytest.raises(ValueError):
            log.users[0] = 3

    def test_range_validation(self):
        log = InteractionLog(n_users=3, n_items=3)
        with pytest.raises(ValueError, match="user id out of range"):
            log.append(3, 0)
        with pytest.raises(ValueError, match="item id out of range"):
            log.append(0, -1)
        with pytest.raises(ValueError, match="parallel"):
            log.extend([0, 1], [0])
        assert len(log) == 0  # failed ingests leave nothing behind

    def test_snapshot_watermarks(self):
        log = InteractionLog(n_users=5, n_items=5)
        log.extend([0, 1, 2, 3], [1, 2, 3, 4])
        early = log.snapshot(upto=2, name="s")
        full = log.snapshot(name="s")
        assert early.name == "s@2" and full.name == "s@4"
        assert early.n_interactions == 2 and full.n_interactions == 4
        # Snapshots are frozen copies: later ingestion cannot mutate them.
        log.append(4, 0)
        assert full.n_interactions == 4
        np.testing.assert_array_equal(early.users, [0, 1])
        with pytest.raises(ValueError, match="watermark"):
            log.snapshot(upto=99)

    def test_from_dataset_round_trip(self):
        dataset = make_tiny_dataset(seed=0)
        log = InteractionLog.from_dataset(dataset)
        assert log.watermark == dataset.n_interactions
        snap = log.snapshot()
        np.testing.assert_array_equal(snap.users, dataset.users)
        np.testing.assert_array_equal(snap.items, dataset.items)
        np.testing.assert_array_equal(snap.timestamps, dataset.timestamps)


class TestReplay:
    def test_timestamp_order_is_stable_sort(self):
        dataset = make_tiny_dataset(seed=0)
        order = replay_order(dataset, "timestamp")
        times = dataset.timestamps[order]
        assert (np.diff(times) >= 0).all()
        # Stable: equal timestamps keep arrival order.
        np.testing.assert_array_equal(
            order, np.argsort(dataset.timestamps, kind="stable"))

    def test_replay_batches_cover_everything_once(self):
        dataset = make_tiny_dataset(seed=1)
        batches = list(replay_events(dataset, batch_size=7))
        users = np.concatenate([b[0] for b in batches])
        assert users.size == dataset.n_interactions
        order = replay_order(dataset, "timestamp")
        np.testing.assert_array_equal(users, dataset.users[order])

    def test_shuffled_replay_is_seeded(self):
        dataset = make_tiny_dataset(seed=0)
        a = list(replay_events(dataset, batch_size=5, order="shuffled", seed=3))
        b = list(replay_events(dataset, batch_size=5, order="shuffled", seed=3))
        c = list(replay_events(dataset, batch_size=5, order="shuffled", seed=4))
        for (ua, ia, ta), (ub, ib, tb) in zip(a, b):
            np.testing.assert_array_equal(ua, ub)
            np.testing.assert_array_equal(ia, ib)
            np.testing.assert_array_equal(ta, tb)
        assert any(not np.array_equal(x[0], y[0]) for x, y in zip(a, c))

    def test_replay_start_offset(self):
        dataset = make_tiny_dataset(seed=0)
        full = np.concatenate([b[0] for b in replay_events(dataset, 4)])
        tail = np.concatenate([b[0] for b in replay_events(dataset, 4, start=10)])
        np.testing.assert_array_equal(tail, full[10:])

    def test_replay_rejects_bad_arguments(self):
        dataset = make_tiny_dataset(seed=0)
        with pytest.raises(ValueError, match="unknown order"):
            replay_order(dataset, "backwards")
        with pytest.raises(ValueError, match="batch_size"):
            list(replay_events(dataset, batch_size=0))
        with pytest.raises(ValueError, match="start"):
            list(replay_events(dataset, start=10_000))

    def test_prequential_split_partitions_by_time(self):
        dataset = make_tiny_dataset(seed=0)
        warmup, stream = prequential_split(dataset, warmup_frac=0.75)
        assert warmup.size + stream.size == dataset.n_interactions
        assert warmup.size == int(round(0.75 * dataset.n_interactions))
        if warmup.size and stream.size:
            assert dataset.timestamps[warmup].max() <= dataset.timestamps[stream].min()
        with pytest.raises(ValueError, match="warmup_frac"):
            prequential_split(dataset, warmup_frac=1.5)
