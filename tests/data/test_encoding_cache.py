"""Encoded-instance cache: equality, hits, invalidation, eviction."""

import numpy as np
import pytest

from repro.data.encoding import EncodedCache, instance_key
from tests.helpers import make_tiny_dataset


@pytest.fixture
def ds():
    return make_tiny_dataset(n_users=10, n_items=12)


@pytest.fixture
def pairs(ds):
    rng = np.random.default_rng(0)
    users = rng.integers(0, ds.n_users, size=64)
    items = rng.integers(0, ds.n_items, size=64)
    return users, items


class TestEquality:
    def test_cached_equals_fresh_encoding(self, ds, pairs):
        users, items = pairs
        fresh_idx, fresh_val = ds.encode(users, items)
        cached_idx, cached_val = ds.encode_cached(users, items)
        np.testing.assert_array_equal(cached_idx, fresh_idx)
        np.testing.assert_array_equal(cached_val, fresh_val)

    def test_slices_equal_per_batch_encoding(self, ds, pairs):
        users, items = pairs
        indices, values = ds.encode_cached(users, items)
        for batch in (np.array([3, 1, 9]), slice(10, 30)):
            fresh_idx, fresh_val = ds.encode(users[batch], items[batch])
            np.testing.assert_array_equal(indices[batch], fresh_idx)
            np.testing.assert_array_equal(values[batch], fresh_val)


class TestCaching:
    def test_content_equal_arrays_hit(self, ds, pairs):
        users, items = pairs
        first = ds.encode_cached(users, items)
        # Fresh array objects with identical content must hit the cache.
        second = ds.encode_cached(users.copy(), items.copy())
        assert first[0] is second[0] and first[1] is second[1]
        stats = ds.encoded_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cached_arrays_are_read_only(self, ds, pairs):
        indices, values = ds.encode_cached(*pairs)
        with pytest.raises(ValueError):
            indices[0, 0] = 99
        with pytest.raises(ValueError):
            values[0, 0] = 99.0

    def test_over_budget_sets_bypass_the_cache(self, ds, pairs):
        # A set whose full encoding exceeds the cache's byte budget is
        # reported uncacheable, and encode_cached leaves the cache alone.
        users, items = pairs
        ds._encoded_cache = EncodedCache(capacity=8, max_bytes=64)
        assert not ds.encoding_cacheable(users.size)
        ds.encode_cached(users, items)
        assert ds.encoded_cache_stats() == {
            "hits": 0, "misses": 0, "entries": 0, "capacity": 8, "nbytes": 0}

    def test_batch_scorer_respects_the_byte_budget(self, ds, pairs):
        # FeatureRecommender falls back to per-chunk encoding (identical
        # scores, nothing cached) when the precompute would be refused.
        import numpy as np

        from repro.models.fm import FactorizationMachine

        users, items = pairs
        model = FactorizationMachine(ds, k=4, rng=np.random.default_rng(0))
        expected = model.score(users, items).data
        ds._encoded_cache = EncodedCache(capacity=8, max_bytes=64)
        scores = model.batch_scorer(users, items)(slice(None))
        np.testing.assert_array_equal(scores.data, expected)
        assert ds.encoded_cache_stats()["entries"] == 0

    def test_oversized_sets_bypass_the_cache(self, ds, pairs):
        users, items = pairs
        before = ds.encoded_cache_stats()
        indices, values = ds.encode_cached(users, items, max_rows=8)
        after = ds.encoded_cache_stats()
        assert after == before  # untouched: no lookup, no insert
        fresh_idx, fresh_val = ds.encode(users, items)
        np.testing.assert_array_equal(indices, fresh_idx)
        np.testing.assert_array_equal(values, fresh_val)


class TestInvalidation:
    def test_changed_instances_are_reencoded(self, ds, pairs):
        users, items = pairs
        ds.encode_cached(users, items)
        changed_items = items.copy()
        changed_items[0] = (changed_items[0] + 1) % ds.n_items
        indices, values = ds.encode_cached(users, changed_items)
        fresh_idx, fresh_val = ds.encode(users, changed_items)
        np.testing.assert_array_equal(indices, fresh_idx)
        np.testing.assert_array_equal(values, fresh_val)
        assert ds.encoded_cache_stats()["misses"] == 2

    def test_fingerprint_is_content_based(self):
        users = np.array([0, 1, 2], dtype=np.int64)
        items = np.array([3, 4, 5], dtype=np.int64)
        assert instance_key(users, items) == instance_key(users.copy(), items.copy())
        assert instance_key(users, items) != instance_key(items, users)
        # Size is part of the digest, so a shifted boundary between the
        # two arrays cannot collide.
        assert instance_key(np.array([0, 1]), np.array([2, 3])) != \
            instance_key(np.array([0]), np.array([1, 2, 3]))

    def test_clear_resets_counters_and_entries(self, ds, pairs):
        ds.encode_cached(*pairs)
        ds.clear_encoded_cache()
        stats = ds.encoded_cache_stats()
        assert (stats["hits"], stats["misses"], stats["entries"],
                stats["nbytes"]) == (0, 0, 0, 0)


class TestEncodedCacheLRU:
    def test_eviction_drops_least_recently_used(self):
        def entry():
            return (np.zeros((1, 2), dtype=np.int64),
                    np.zeros((1, 2), dtype=np.float64))

        cache = EncodedCache(capacity=2)
        a, b, c = entry(), entry(), entry()
        cache.put(b"a", a)
        cache.put(b"b", b)
        assert cache.get(b"a") is a  # refresh "a"
        cache.put(b"c", c)           # evicts "b"
        assert cache.get(b"b") is None
        assert cache.get(b"a") is a and cache.get(b"c") is c
        assert len(cache) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EncodedCache(capacity=0)
        with pytest.raises(ValueError):
            EncodedCache(max_bytes=0)

    def test_byte_budget_evicts_lru(self):
        def entry(rows):
            return (np.zeros((rows, 4), dtype=np.int64),
                    np.zeros((rows, 4), dtype=np.float64))

        cache = EncodedCache(capacity=8, max_bytes=3 * 64)  # three 1-row entries
        cache.put(b"a", entry(1))
        cache.put(b"b", entry(1))
        cache.put(b"c", entry(1))
        assert len(cache) == 3
        cache.put(b"d", entry(1))  # budget exceeded -> evict oldest ("a")
        assert cache.get(b"a") is None
        assert cache.get(b"d") is not None
        assert cache.stats()["nbytes"] <= 3 * 64

    def test_oversized_entry_is_not_cached(self):
        cache = EncodedCache(capacity=8, max_bytes=64)
        small = (np.zeros((1, 4), dtype=np.int64),
                 np.zeros((1, 4), dtype=np.float64))
        big = (np.zeros((100, 4), dtype=np.int64),
               np.zeros((100, 4), dtype=np.float64))
        cache.put(b"small", small)
        cache.put(b"big", big)  # larger than the whole budget: skipped
        assert cache.get(b"big") is None
        assert cache.get(b"small") is not None  # survivors keep their slot


class TestPickling:
    def test_dataset_pickles_without_caches(self, ds, pairs):
        import pickle

        ds.encode_cached(*pairs)
        ds.membership()
        ds._encoded_cache = EncodedCache(capacity=3, max_bytes=1234)
        clone = pickle.loads(pickle.dumps(ds))
        assert clone.encoded_cache_stats()["entries"] == 0
        assert clone._encoded_cache.capacity == 3
        assert clone._encoded_cache.max_bytes == 1234  # budget survives pickling
        assert clone._membership_cache is None
        np.testing.assert_array_equal(clone.users, ds.users)
        np.testing.assert_array_equal(
            clone.encode(*pairs)[0], ds.encode(*pairs)[0])
