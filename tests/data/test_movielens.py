"""Tests for the real-file MovieLens loader (using synthesized files)."""

import os

import numpy as np
import pytest

from repro.data.movielens import GENRES, load_movielens_1m


@pytest.fixture
def ml_dir(tmp_path):
    """Write a miniature ML-1M-format dataset to a temp directory."""
    users = [
        "1::F::1::10::48067",
        "2::M::56::16::70072",
        "3::M::25::15::55117",
    ]
    movies = [
        "10::Movie A (1995)::Comedy|Romance",
        "20::Movie B (1995)::Action",
        "30::Movie C (1997)::Drama|Thriller|War|Western",
    ]
    ratings = [
        "1::10::5::978300760",
        "1::20::4::978302109",
        "1::30::2::978301968",   # below min_rating -> dropped
        "2::20::5::978298413",
        "2::30::4::978220179",
        "3::10::4::978199279",
        "3::30::1::978158471",   # dropped
    ]
    (tmp_path / "users.dat").write_text("\n".join(users), encoding="latin-1")
    (tmp_path / "movies.dat").write_text("\n".join(movies), encoding="latin-1")
    (tmp_path / "ratings.dat").write_text("\n".join(ratings), encoding="latin-1")
    return str(tmp_path)


class TestLoader:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_movielens_1m(str(tmp_path))

    def test_implicit_threshold(self, ml_dir):
        ds = load_movielens_1m(ml_dir, min_rating=4.0)
        assert ds.n_interactions == 5

    def test_entity_counts(self, ml_dir):
        ds = load_movielens_1m(ml_dir)
        assert ds.n_users == 3
        assert ds.n_items == 3

    def test_attributes_present(self, ml_dir):
        ds = load_movielens_1m(ml_dir)
        assert set(ds.user_attrs) == {"gender", "age", "occupation"}
        assert set(ds.item_attrs) == {"genre"}

    def test_gender_mapping(self, ml_dir):
        ds = load_movielens_1m(ml_dir)
        gender_idx, _val = ds.user_attrs["gender"]
        assert gender_idx[0, 0] == 0  # user 1 is F
        assert gender_idx[1, 0] == 1  # user 2 is M

    def test_genre_multi_hot(self, ml_dir):
        ds = load_movielens_1m(ml_dir)
        genre_idx, genre_val = ds.item_attrs["genre"]
        # Movie A (item 0): Comedy|Romance -> two active slots.
        assert genre_val[0].sum() == 2.0
        assert genre_idx[0, 0] == GENRES.index("Comedy")
        assert genre_idx[0, 1] == GENRES.index("Romance")

    def test_genre_truncation_to_max_slots(self, ml_dir):
        ds = load_movielens_1m(ml_dir)
        _idx, genre_val = ds.item_attrs["genre"]
        # Movie C has 4 genres but only 3 slots.
        assert genre_val[2].sum() == 3.0

    def test_timestamps_preserved(self, ml_dir):
        ds = load_movielens_1m(ml_dir)
        assert ds.timestamps.max() == 978302109

    def test_encoding_works(self, ml_dir):
        ds = load_movielens_1m(ml_dir)
        idx, val = ds.encode(ds.users, ds.items)
        assert idx.shape[0] == ds.n_interactions
        assert np.all(idx >= 0) and np.all(idx < ds.n_features)
