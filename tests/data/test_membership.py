"""Tests for the shared sorted-CSR membership structure."""

import numpy as np
import pytest

from repro.data.membership import UserPositives
from tests.helpers import make_tiny_dataset


def brute_force_sets(n_users, users, items):
    sets = [set() for _ in range(n_users)]
    for u, i in zip(users, items):
        sets[u].add(int(i))
    return sets


@pytest.fixture
def random_relation():
    rng = np.random.default_rng(42)
    n_users, n_items = 40, 29
    users = rng.integers(0, n_users, 500)
    items = rng.integers(0, n_items, 500)
    return n_users, n_items, users, items


class TestConstruction:
    def test_csr_rows_sorted_and_deduplicated(self, random_relation):
        n_users, n_items, users, items = random_relation
        m = UserPositives(n_users, n_items, users, items)
        sets = brute_force_sets(n_users, users, items)
        for u in range(n_users):
            row = m.row(u)
            assert row.tolist() == sorted(sets[u])
            assert np.all(np.diff(row) > 0)  # strictly increasing

    def test_degrees_and_max(self, random_relation):
        n_users, n_items, users, items = random_relation
        m = UserPositives(n_users, n_items, users, items)
        sets = brute_force_sets(n_users, users, items)
        np.testing.assert_array_equal(
            m.degrees(), [len(s) for s in sets])
        assert m.max_degree() == max(len(s) for s in sets)
        assert m.nnz == sum(len(s) for s in sets)

    def test_from_dataset_matches_positives(self):
        ds = make_tiny_dataset()
        m = UserPositives.from_dataset(ds)
        assert m.to_sets() == ds.positives_by_user()

    def test_empty_relation(self):
        m = UserPositives(3, 5, np.array([], dtype=np.int64),
                          np.array([], dtype=np.int64))
        assert m.nnz == 0
        assert m.max_degree() == 0
        assert not m.contains(np.array([0, 1, 2]), np.array([0, 1, 2])).any()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            UserPositives(2, 3, np.array([2]), np.array([0]))
        with pytest.raises(ValueError):
            UserPositives(2, 3, np.array([0]), np.array([3]))


class TestContains:
    def test_matches_brute_force(self, random_relation):
        n_users, n_items, users, items = random_relation
        m = UserPositives(n_users, n_items, users, items)
        sets = brute_force_sets(n_users, users, items)
        rng = np.random.default_rng(1)
        qu = rng.integers(0, n_users, 2000)
        qi = rng.integers(0, n_items, 2000)
        expected = np.array([int(i) in sets[u] for u, i in zip(qu, qi)])
        np.testing.assert_array_equal(m.contains(qu, qi), expected)

    def test_out_of_range_query_rejected(self, random_relation):
        # key arithmetic would silently alias (user, n_items) onto
        # (user + 1, 0); the query must be validated instead.
        n_users, n_items, users, items = random_relation
        m = UserPositives(n_users, n_items, users, items)
        with pytest.raises(ValueError, match="item id"):
            m.contains(np.array([0]), np.array([n_items]))
        with pytest.raises(ValueError, match="user id"):
            m.contains(np.array([n_users]), np.array([0]))

    def test_returns_bool_of_query_shape(self, random_relation):
        n_users, n_items, users, items = random_relation
        m = UserPositives(n_users, n_items, users, items)
        out = m.contains(np.zeros(7, dtype=np.int64),
                         np.zeros(7, dtype=np.int64))
        assert out.dtype == bool and out.shape == (7,)


class TestComplement:
    def test_free_counts(self, random_relation):
        n_users, n_items, users, items = random_relation
        m = UserPositives(n_users, n_items, users, items)
        sets = brute_force_sets(n_users, users, items)
        all_users = np.arange(n_users)
        np.testing.assert_array_equal(
            m.free_counts(all_users),
            [n_items - len(s) for s in sets])

    def test_kth_free_enumerates_complement(self, random_relation):
        n_users, n_items, users, items = random_relation
        m = UserPositives(n_users, n_items, users, items)
        sets = brute_force_sets(n_users, users, items)
        for u in range(n_users):
            free = sorted(set(range(n_items)) - sets[u])
            if not free:
                continue
            ranks = np.arange(len(free), dtype=np.int64)
            got = m.kth_free(np.full(len(free), u, dtype=np.int64), ranks)
            assert got.tolist() == free

    def test_kth_free_mixed_users_vectorized(self, random_relation):
        n_users, n_items, users, items = random_relation
        m = UserPositives(n_users, n_items, users, items)
        sets = brute_force_sets(n_users, users, items)
        rng = np.random.default_rng(2)
        qu = rng.integers(0, n_users, 300)
        free_counts = m.free_counts(qu)
        ranks = rng.integers(0, free_counts)
        got = m.kth_free(qu, ranks)
        for u, r, g in zip(qu, ranks, got):
            free = sorted(set(range(n_items)) - sets[u])
            assert g == free[r]
        # every result is genuinely uninteracted
        assert not m.contains(qu, got).any()

    def test_kth_free_near_dense_user(self):
        # User 0 interacted with everything except item 6.
        items = np.array([i for i in range(10) if i != 6], dtype=np.int64)
        m = UserPositives(1, 10, np.zeros(items.size, dtype=np.int64), items)
        assert m.free_counts(np.array([0])).tolist() == [1]
        assert m.kth_free(np.array([0]), np.array([0])).tolist() == [6]
