"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DATASET_BUILDERS,
    SyntheticConfig,
    _attribute_from_clusters,
    _correlated_metric,
    _draw_interaction_counts,
    _multi_hot,
    _zipf_popularity,
    make_amazon_like,
    make_dataset,
    make_mercari_like,
    make_movielens_like,
)


class TestHelpers:
    def test_zipf_is_distribution(self):
        p = _zipf_popularity(100, 1.0, np.random.default_rng(0))
        assert p.shape == (100,)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p > 0)

    def test_zipf_long_tail(self):
        p = _zipf_popularity(1000, 1.0, np.random.default_rng(0))
        top = np.sort(p)[::-1]
        assert top[:10].sum() > 10 * top[500:510].sum()

    def test_correlated_metric_is_psd(self):
        m = _correlated_metric(8, np.random.default_rng(0))
        eigenvalues = np.linalg.eigvalsh(m)
        assert np.all(eigenvalues > 0)

    def test_correlated_metric_not_diagonal(self):
        m = _correlated_metric(8, np.random.default_rng(0))
        off_diag = m - np.diag(np.diag(m))
        assert np.abs(off_diag).max() > 0.05

    def test_attribute_informativeness_extremes(self):
        rng = np.random.default_rng(0)
        clusters = rng.integers(0, 4, size=2000)
        fully = _attribute_from_clusters(clusters, 4, 1.0, rng)
        np.testing.assert_array_equal(fully, clusters % 4)
        noisy = _attribute_from_clusters(clusters, 4, 0.0, rng)
        agreement = (noisy == clusters % 4).mean()
        assert agreement < 0.5

    def test_multi_hot_primary_always_active(self):
        rng = np.random.default_rng(0)
        primary = rng.integers(0, 5, size=50)
        idx, val = _multi_hot(primary, 5, max_slots=3, extra_prob=0.5, rng=rng)
        np.testing.assert_array_equal(idx[:, 0], primary)
        np.testing.assert_array_equal(val[:, 0], 1.0)

    def test_multi_hot_padding_is_zero_valued(self):
        rng = np.random.default_rng(0)
        idx, val = _multi_hot(np.zeros(50, dtype=np.int64), 5, 3, 0.0, rng)
        np.testing.assert_array_equal(val[:, 1:], 0.0)

    def test_interaction_counts_respect_minimum(self):
        counts = _draw_interaction_counts(500, 8.0, 5, np.random.default_rng(0))
        assert counts.min() >= 5


class TestGenerators:
    def test_movielens_reproducible(self):
        a = make_movielens_like(n_users=50, n_items=40, seed=3)
        b = make_movielens_like(n_users=50, n_items=40, seed=3)
        np.testing.assert_array_equal(a.users, b.users)
        np.testing.assert_array_equal(a.items, b.items)

    def test_movielens_different_seed_differs(self):
        a = make_movielens_like(n_users=50, n_items=40, seed=3)
        b = make_movielens_like(n_users=50, n_items=40, seed=4)
        assert not np.array_equal(a.items, b.items)

    def test_movielens_attributes(self):
        ds = make_movielens_like(n_users=50, n_items=40, seed=0)
        assert set(ds.user_attrs) == {"gender", "age", "occupation"}
        assert set(ds.item_attrs) == {"genre"}
        assert ds.item_attrs["genre"][0].shape[1] == 3  # multi-hot slots

    def test_amazon_unknown_category(self):
        with pytest.raises(ValueError):
            make_amazon_like("garden")

    def test_amazon_has_subcategory(self):
        ds = make_amazon_like("auto", seed=0, scale=0.2)
        assert set(ds.item_attrs) == {"subcategory"}

    def test_amazon_five_core(self):
        ds = make_amazon_like("auto", seed=0, scale=0.3)
        assert ds.interactions_per_user().min() >= 5

    def test_mercari_unknown_category(self):
        with pytest.raises(ValueError):
            make_mercari_like("cars")

    def test_mercari_attributes(self):
        ds = make_mercari_like("ticket", seed=0, scale=0.2)
        expected = {"category", "condition", "ship_method", "ship_origin", "ship_duration"}
        assert set(ds.item_attrs) == expected

    def test_mercari_mostly_single_purchase_items(self):
        ds = make_mercari_like("ticket", seed=0, scale=0.5)
        counts = ds.interactions_per_item()
        interacted = counts[counts > 0]
        assert (interacted == 1).mean() > 0.4  # "most items purchased once"

    def test_sparsity_ordering_matches_paper(self):
        # MovieLens is the densest; Mercari the sparsest (paper Table 2).
        ml = make_dataset("movielens", seed=0, scale=0.5)
        office = make_dataset("amazon-office", seed=0, scale=0.5)
        ticket = make_dataset("mercari-ticket", seed=0, scale=0.5)
        assert ml.sparsity() < office.sparsity() < ticket.sparsity()

    def test_no_duplicate_interactions(self):
        ds = make_dataset("amazon-auto", seed=0, scale=0.3)
        pairs = set(zip(ds.users.tolist(), ds.items.tolist()))
        assert len(pairs) == ds.n_interactions

    def test_timestamps_unique_within_user(self):
        ds = make_dataset("amazon-auto", seed=0, scale=0.3)
        for u in range(min(ds.n_users, 20)):
            mask = ds.users == u
            times = ds.timestamps[mask]
            assert len(np.unique(times)) == times.size


class TestMakeDataset:
    def test_all_keys_build(self):
        for key in DATASET_BUILDERS:
            ds = make_dataset(key, seed=0, scale=0.15)
            assert ds.n_interactions > 0, key

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            make_dataset("netflix")

    def test_scale_shrinks(self):
        small = make_dataset("amazon-auto", seed=0, scale=0.3)
        large = make_dataset("amazon-auto", seed=0, scale=1.0)
        assert small.n_users < large.n_users

    def test_movielens_scale(self):
        small = make_dataset("movielens", seed=0, scale=0.3)
        assert small.n_users == 180


class TestConfig:
    def test_frozen(self):
        config = SyntheticConfig(10, 10, 5.0, 5, 2, 0.5, 1.0, 1.0, False)
        with pytest.raises(AttributeError):
            config.n_users = 20
