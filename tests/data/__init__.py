"""Test package."""
