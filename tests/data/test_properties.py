"""Hypothesis property tests for the data layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import RecDataset
from repro.data.schema import FeatureField, FeatureSpace
from repro.data.splits import leave_one_out_split, random_split


@st.composite
def feature_spaces(draw):
    n_fields = draw(st.integers(1, 5))
    fields = []
    for index in range(n_fields):
        fields.append(FeatureField(
            name=f"f{index}",
            cardinality=draw(st.integers(1, 50)),
            slots=draw(st.integers(1, 3)),
        ))
    return FeatureSpace(fields)


@settings(max_examples=50, deadline=None)
@given(feature_spaces())
def test_offsets_partition_feature_space(space):
    """Field blocks tile [0, n_features) without gaps or overlaps."""
    covered = 0
    for field in space.fields:
        assert space.offset(field.name) == covered
        covered += field.cardinality
    assert covered == space.n_features


@settings(max_examples=50, deadline=None)
@given(feature_spaces())
def test_slot_starts_partition_width(space):
    covered = 0
    for field in space.fields:
        assert space.slot_start(field.name) == covered
        covered += field.slots
    assert covered == space.width


@settings(max_examples=50, deadline=None)
@given(feature_spaces(), st.integers(0, 10_000))
def test_field_of_inverts_globalize(space, raw):
    global_index = raw % space.n_features
    field = space.field_of(global_index)
    offset = space.offset(field.name)
    assert offset <= global_index < offset + field.cardinality


@st.composite
def small_datasets(draw):
    n_users = draw(st.integers(2, 10))
    n_items = draw(st.integers(2, 12))
    n_rows = draw(st.integers(1, 40))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    users = rng.integers(0, n_users, size=n_rows)
    items = rng.integers(0, n_items, size=n_rows)
    times = rng.permutation(n_rows)
    return RecDataset("prop", n_users, n_items, users=users, items=items,
                      timestamps=times)


@settings(max_examples=40, deadline=None)
@given(small_datasets())
def test_encode_indices_always_in_range(ds):
    idx, val = ds.encode(ds.users, ds.items)
    assert idx.min() >= 0
    assert idx.max() < ds.n_features
    assert np.all((val == 0.0) | (val == 1.0))


@settings(max_examples=40, deadline=None)
@given(small_datasets())
def test_random_split_is_partition(ds):
    train, valid, test = random_split(ds, seed=0)
    merged = np.sort(np.concatenate([train, valid, test]))
    np.testing.assert_array_equal(merged, np.arange(ds.n_interactions))


@settings(max_examples=40, deadline=None)
@given(small_datasets())
def test_leave_one_out_is_partition_with_unique_test_users(ds):
    train, test = leave_one_out_split(ds)
    merged = np.sort(np.concatenate([train, test]))
    np.testing.assert_array_equal(merged, np.arange(ds.n_interactions))
    test_users = ds.users[test]
    assert len(np.unique(test_users)) == test_users.size


@settings(max_examples=40, deadline=None)
@given(small_datasets())
def test_per_user_counts_sum_to_interactions(ds):
    assert ds.interactions_per_user().sum() == ds.n_interactions
    assert ds.interactions_per_item().sum() == ds.n_interactions
