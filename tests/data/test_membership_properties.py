"""Hypothesis property tests for the shared membership data plane.

:class:`repro.data.membership.UserPositives` now backs negative
sampling, serving's seen-item masking, and the dataset's positives
views; these properties pin its contract against a brute-force Python
``set`` oracle on random CSR corpora — duplicates, empty users, empty
corpora, single-item catalogues and fully-dense users included.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import RecDataset
from repro.data.membership import UserPositives
from repro.data.sampling import NegativeSampler


@st.composite
def corpora(draw):
    """A random interaction corpus (with duplicates) plus its shape."""
    n_users = draw(st.integers(1, 8))
    n_items = draw(st.integers(1, 12))
    n_rows = draw(st.integers(0, 60))
    users = draw(st.lists(st.integers(0, n_users - 1),
                          min_size=n_rows, max_size=n_rows))
    items = draw(st.lists(st.integers(0, n_items - 1),
                          min_size=n_rows, max_size=n_rows))
    return n_users, n_items, np.array(users, dtype=np.int64), \
        np.array(items, dtype=np.int64)


def oracle_sets(n_users, users, items):
    positives = [set() for _ in range(n_users)]
    for user, item in zip(users.tolist(), items.tolist()):
        positives[user].add(item)
    return positives


@settings(max_examples=60, deadline=None)
@given(corpora())
def test_contains_agrees_with_python_sets(corpus):
    n_users, n_items, users, items = corpus
    membership = UserPositives(n_users, n_items, users, items)
    oracle = oracle_sets(n_users, users, items)
    # Every (user, item) cell of the full grid, one vectorized query.
    grid_users = np.repeat(np.arange(n_users), n_items)
    grid_items = np.tile(np.arange(n_items), n_users)
    got = membership.contains(grid_users, grid_items)
    expected = np.array([item in oracle[user] for user, item
                         in zip(grid_users, grid_items)])
    np.testing.assert_array_equal(got, expected)


@settings(max_examples=60, deadline=None)
@given(corpora())
def test_rows_and_degrees_match_the_oracle(corpus):
    n_users, n_items, users, items = corpus
    membership = UserPositives(n_users, n_items, users, items)
    oracle = oracle_sets(n_users, users, items)
    np.testing.assert_array_equal(
        membership.degrees(), [len(s) for s in oracle])
    assert membership.nnz == sum(len(s) for s in oracle)
    for user in range(n_users):
        np.testing.assert_array_equal(
            membership.row(user), sorted(oracle[user]))
    assert membership.to_sets() == oracle


@settings(max_examples=60, deadline=None)
@given(corpora())
def test_kth_free_enumerates_the_exact_complement(corpus):
    n_users, n_items, users, items = corpus
    membership = UserPositives(n_users, n_items, users, items)
    oracle = oracle_sets(n_users, users, items)
    query_users, query_ranks, expected = [], [], []
    for user in range(n_users):
        complement = sorted(set(range(n_items)) - oracle[user])
        query_users.extend([user] * len(complement))
        query_ranks.extend(range(len(complement)))
        expected.extend(complement)
    free = membership.free_counts(np.arange(n_users))
    np.testing.assert_array_equal(
        free, [n_items - len(s) for s in oracle])
    if query_users:
        got = membership.kth_free(np.array(query_users, dtype=np.int64),
                                  np.array(query_ranks, dtype=np.int64))
        np.testing.assert_array_equal(got, expected)
        # Round trip: every enumerated item is genuinely uninteracted.
        assert not membership.contains(
            np.array(query_users), got).any()


@settings(max_examples=40, deadline=None)
@given(corpora(), st.integers(0, 2 ** 31 - 1), st.integers(1, 4))
def test_sampled_negatives_are_never_positives(corpus, seed, n_neg):
    n_users, n_items, users, items = corpus
    oracle = oracle_sets(n_users, users, items)
    queryable = np.array([u for u in range(n_users)
                          if len(oracle[u]) < n_items], dtype=np.int64)
    if queryable.size == 0 or users.size == 0:
        return
    dataset = RecDataset("prop", n_users, n_items, users, items)
    sampler = NegativeSampler(dataset, seed=seed)
    negatives = sampler.sample_for_users(queryable, n_neg)
    assert negatives.shape == (queryable.size, n_neg)
    for user, row in zip(queryable.tolist(), negatives.tolist()):
        assert not oracle[user].intersection(row)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 6), st.integers(1, 8), st.data())
def test_fully_dense_users_raise(n_users, n_items, data):
    """A user who interacted with the whole catalogue has no negatives."""
    dense_user = data.draw(st.integers(0, n_users - 1))
    users = np.full(n_items, dense_user, dtype=np.int64)
    items = np.arange(n_items, dtype=np.int64)
    dataset = RecDataset("dense", n_users, n_items, users, items)
    membership = dataset.membership()
    assert membership.free_counts(np.array([dense_user]))[0] == 0
    sampler = NegativeSampler(dataset, seed=0)
    with pytest.raises(ValueError, match="no negatives exist"):
        sampler.sample_for_users(np.array([dense_user]), 1)


@settings(max_examples=30, deadline=None)
@given(corpora())
def test_out_of_range_queries_raise(corpus):
    n_users, n_items, users, items = corpus
    membership = UserPositives(n_users, n_items, users, items)
    with pytest.raises(ValueError):
        membership.contains(np.array([n_users]), np.array([0]))
    with pytest.raises(ValueError):
        membership.contains(np.array([0]), np.array([-1]))
