"""Tests for FeatureField and FeatureSpace."""

import pytest

from repro.data.schema import FeatureField, FeatureSpace


class TestFeatureField:
    def test_valid(self):
        f = FeatureField("user", 10)
        assert f.slots == 1

    def test_rejects_nonpositive_cardinality(self):
        with pytest.raises(ValueError):
            FeatureField("user", 0)

    def test_rejects_nonpositive_slots(self):
        with pytest.raises(ValueError):
            FeatureField("genre", 5, slots=0)

    def test_frozen(self):
        f = FeatureField("user", 10)
        with pytest.raises(AttributeError):
            f.cardinality = 20


class TestFeatureSpace:
    @pytest.fixture
    def space(self):
        return FeatureSpace([
            FeatureField("user", 10),
            FeatureField("item", 20),
            FeatureField("genre", 5, slots=3),
        ])

    def test_total_features(self, space):
        assert space.n_features == 35

    def test_width(self, space):
        assert space.width == 5

    def test_offsets(self, space):
        assert space.offset("user") == 0
        assert space.offset("item") == 10
        assert space.offset("genre") == 30

    def test_slot_starts(self, space):
        assert space.slot_start("user") == 0
        assert space.slot_start("item") == 1
        assert space.slot_start("genre") == 2

    def test_globalize(self, space):
        import numpy as np
        out = space.globalize("item", np.array([0, 5]))
        assert list(out) == [10, 15]

    def test_field_lookup(self, space):
        assert space.field("genre").slots == 3

    def test_unknown_field_raises(self, space):
        with pytest.raises(KeyError):
            space.field("brand")
        with pytest.raises(KeyError):
            space.offset("brand")

    def test_contains_and_iter(self, space):
        assert "user" in space
        assert "brand" not in space
        assert [f.name for f in space] == ["user", "item", "genre"]
        assert len(space) == 3

    def test_field_of(self, space):
        assert space.field_of(0).name == "user"
        assert space.field_of(9).name == "user"
        assert space.field_of(10).name == "item"
        assert space.field_of(34).name == "genre"

    def test_field_of_out_of_range(self, space):
        with pytest.raises(IndexError):
            space.field_of(35)
        with pytest.raises(IndexError):
            space.field_of(-1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FeatureSpace([FeatureField("a", 2), FeatureField("a", 3)])

    def test_subspace(self, space):
        sub = space.subspace(["user", "genre"])
        assert sub.n_features == 15
        assert sub.offset("genre") == 10

    def test_describe_mentions_fields(self, space):
        text = space.describe()
        assert "user" in text and "genre" in text and "35" in text
