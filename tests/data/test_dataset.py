"""Tests for the RecDataset container."""

import numpy as np
import pytest

from repro.data.dataset import RecDataset
from tests.helpers import make_tiny_dataset


class TestConstruction:
    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            RecDataset("x", 2, 2, users=np.array([0]), items=np.array([0, 1]))

    def test_user_out_of_range(self):
        with pytest.raises(ValueError):
            RecDataset("x", 2, 2, users=np.array([5]), items=np.array([0]))

    def test_item_out_of_range(self):
        with pytest.raises(ValueError):
            RecDataset("x", 2, 2, users=np.array([0]), items=np.array([-1]))

    def test_default_timestamps(self):
        ds = RecDataset("x", 2, 2, users=np.array([0, 1]), items=np.array([0, 1]))
        assert list(ds.timestamps) == [0, 1]

    def test_timestamp_shape_check(self):
        with pytest.raises(ValueError):
            RecDataset("x", 2, 2, users=np.array([0]), items=np.array([0]),
                       timestamps=np.array([1, 2]))

    def test_attr_shape_mismatch(self):
        idx = np.zeros((2, 1), dtype=np.int64)
        val = np.ones((2, 2))
        with pytest.raises(ValueError):
            RecDataset("x", 2, 2, users=np.array([0]), items=np.array([0]),
                       item_attrs={"c": (idx, val)})

    def test_repr(self):
        ds = make_tiny_dataset()
        assert "tiny" in repr(ds)


class TestFeatureSpace:
    def test_fields_order(self):
        ds = make_tiny_dataset()
        names = [f.name for f in ds.feature_space]
        assert names[0] == "user" and names[1] == "item"
        assert set(names[2:]) == {"gender", "category", "tags"}

    def test_n_features(self):
        ds = make_tiny_dataset()
        expected = ds.n_users + ds.n_items + 2 + 4 + 5
        assert ds.n_features == expected

    def test_sample_width(self):
        ds = make_tiny_dataset()
        # user + item + gender + category + 2 tag slots
        assert ds.sample_width == 6


class TestEncode:
    def test_shapes(self):
        ds = make_tiny_dataset()
        idx, val = ds.encode(ds.users[:7], ds.items[:7])
        assert idx.shape == (7, ds.sample_width)
        assert val.shape == (7, ds.sample_width)

    def test_user_item_columns(self):
        ds = make_tiny_dataset()
        idx, val = ds.encode(np.array([3]), np.array([7]))
        assert idx[0, 0] == 3
        assert idx[0, 1] == ds.feature_space.offset("item") + 7
        assert val[0, 0] == 1.0 and val[0, 1] == 1.0

    def test_indices_within_field_blocks(self):
        ds = make_tiny_dataset()
        idx, val = ds.encode(ds.users, ds.items)
        space = ds.feature_space
        for field in space.fields:
            start = space.slot_start(field.name)
            stop = start + field.slots
            block = idx[:, start:stop]
            offset = space.offset(field.name)
            assert block.min() >= offset
            assert block.max() < offset + field.cardinality

    def test_padding_slots_have_zero_value(self):
        ds = make_tiny_dataset()
        _idx, val = ds.encode(ds.users, ds.items)
        tags_start = ds.feature_space.slot_start("tags")
        tag_vals = val[:, tags_start:tags_start + 2]
        assert set(np.unique(tag_vals)) <= {0.0, 1.0}

    def test_deterministic(self):
        ds = make_tiny_dataset()
        a = ds.encode(ds.users[:5], ds.items[:5])
        b = ds.encode(ds.users[:5], ds.items[:5])
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestViews:
    def test_select_fields_empty(self):
        ds = make_tiny_dataset()
        base = ds.select_fields([])
        assert base.n_features == ds.n_users + ds.n_items
        assert base.sample_width == 2

    def test_select_fields_subset(self):
        ds = make_tiny_dataset()
        view = ds.select_fields(["category"])
        assert "category" in view.item_attrs
        assert "tags" not in view.item_attrs
        assert "gender" not in view.user_attrs

    def test_select_fields_unknown(self):
        ds = make_tiny_dataset()
        with pytest.raises(KeyError):
            ds.select_fields(["brand"])

    def test_select_fields_keeps_interactions(self):
        ds = make_tiny_dataset()
        view = ds.select_fields([])
        assert view.n_interactions == ds.n_interactions

    def test_subset(self):
        ds = make_tiny_dataset()
        sub = ds.subset(np.array([0, 1, 2]))
        assert sub.n_interactions == 3
        assert sub.n_users == ds.n_users  # entity spaces preserved

    def test_subset_keeps_attrs(self):
        ds = make_tiny_dataset()
        sub = ds.subset(np.arange(4))
        assert sub.n_features == ds.n_features


class TestLookups:
    def test_positives_by_user(self):
        ds = make_tiny_dataset()
        positives = ds.positives_by_user()
        assert len(positives) == ds.n_users
        total = sum(len(s) for s in positives)
        assert total == ds.n_interactions  # generator avoids duplicates

    def test_positives_cached(self):
        ds = make_tiny_dataset()
        assert ds.positives_by_user() is ds.positives_by_user()

    def test_interactions_per_user(self):
        ds = make_tiny_dataset()
        counts = ds.interactions_per_user()
        assert counts.sum() == ds.n_interactions
        assert counts.shape == (ds.n_users,)

    def test_interactions_per_item(self):
        ds = make_tiny_dataset()
        counts = ds.interactions_per_item()
        assert counts.sum() == ds.n_interactions

    def test_sparsity_in_unit_interval(self):
        ds = make_tiny_dataset()
        assert 0.0 < ds.sparsity() < 1.0

    def test_stats_keys(self):
        stats = make_tiny_dataset().stats()
        assert set(stats) == {"users", "items", "attribute_dim", "instances", "sparsity"}
