"""Tests for the mini-batch iterator."""

import numpy as np
import pytest

from repro.data.batching import minibatches


class TestMinibatches:
    def test_covers_all_indices(self):
        batches = list(minibatches(10, 3, shuffle=False))
        merged = np.concatenate(batches)
        np.testing.assert_array_equal(np.sort(merged), np.arange(10))

    def test_batch_sizes(self):
        sizes = [b.size for b in minibatches(10, 3, shuffle=False)]
        assert sizes == [3, 3, 3, 1]

    def test_drop_last(self):
        sizes = [b.size for b in minibatches(10, 3, shuffle=False, drop_last=True)]
        assert sizes == [3, 3, 3]

    def test_exact_division_with_drop_last(self):
        sizes = [b.size for b in minibatches(9, 3, shuffle=False, drop_last=True)]
        assert sizes == [3, 3, 3]

    def test_shuffle_changes_order(self):
        rng = np.random.default_rng(0)
        shuffled = np.concatenate(list(minibatches(100, 10, rng=rng)))
        assert not np.array_equal(shuffled, np.arange(100))
        np.testing.assert_array_equal(np.sort(shuffled), np.arange(100))

    def test_shuffle_reproducible_with_rng(self):
        a = np.concatenate(list(minibatches(50, 7, rng=np.random.default_rng(3))))
        b = np.concatenate(list(minibatches(50, 7, rng=np.random.default_rng(3))))
        np.testing.assert_array_equal(a, b)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(minibatches(10, 0))

    def test_empty(self):
        assert list(minibatches(0, 5, shuffle=False)) == []
