"""Tests for negative sampling."""

import numpy as np
import pytest

from repro.data.dataset import RecDataset
from repro.data.sampling import NegativeSampler, sample_ranking_candidates
from tests.helpers import make_tiny_dataset


def make_near_dense_dataset(n_items=12, free_items=(7,)):
    """One user who interacted with every item except ``free_items``."""
    items = np.array([i for i in range(n_items) if i not in free_items],
                     dtype=np.int64)
    return RecDataset(
        name="near-dense", n_users=1, n_items=n_items,
        users=np.zeros(items.size, dtype=np.int64), items=items,
    )


class TestNegativeSampler:
    def test_negatives_avoid_positives(self):
        ds = make_tiny_dataset()
        sampler = NegativeSampler(ds, seed=0)
        users = ds.users[:30]
        negatives = sampler.sample_for_users(users, 3)
        positives = ds.positives_by_user()
        for row, user in enumerate(users):
            for item in negatives[row]:
                assert int(item) not in positives[user]

    def test_shape(self):
        ds = make_tiny_dataset()
        out = NegativeSampler(ds, seed=0).sample_for_users(ds.users[:8], 4)
        assert out.shape == (8, 4)

    def test_reproducible(self):
        ds = make_tiny_dataset()
        a = NegativeSampler(ds, seed=1).sample_for_users(ds.users[:10], 2)
        b = NegativeSampler(ds, seed=1).sample_for_users(ds.users[:10], 2)
        np.testing.assert_array_equal(a, b)

    def test_pointwise_training_set_labels(self):
        ds = make_tiny_dataset()
        sampler = NegativeSampler(ds, seed=0)
        users, items, labels = sampler.build_pointwise_training_set(
            np.arange(ds.n_interactions), n_neg=2
        )
        assert users.size == 3 * ds.n_interactions
        assert (labels == 1).sum() == ds.n_interactions
        assert (labels == -1).sum() == 2 * ds.n_interactions

    def test_pointwise_training_set_shuffled(self):
        ds = make_tiny_dataset()
        sampler = NegativeSampler(ds, seed=0)
        _users, _items, labels = sampler.build_pointwise_training_set(
            np.arange(ds.n_interactions), n_neg=2
        )
        # Positives must not all be at the front after shuffling.
        first_third = labels[: ds.n_interactions]
        assert (first_third == 1).sum() < ds.n_interactions

    def test_shapes_and_dtype_contract(self):
        ds = make_tiny_dataset()
        sampler = NegativeSampler(ds, seed=0)
        out = sampler.sample_for_users(ds.users[:6], 3)
        assert out.dtype == np.int64
        assert out.shape == (6, 3)
        # Degenerate shapes keep the contract.
        assert sampler.sample_for_users(ds.users[:0], 3).shape == (0, 3)
        assert sampler.sample_for_users(ds.users[:6], 0).shape == (6, 0)

    def test_near_dense_user_gets_exact_complement(self):
        # The seed sampler could silently return *interacted* items
        # after its retry cap; the exact complement fallback makes the
        # "negatives are uninteracted" contract unconditional even for
        # a user with a single uninteracted item.
        ds = make_near_dense_dataset(n_items=12, free_items=(7,))
        sampler = NegativeSampler(ds, seed=3)
        out = sampler.sample_for_users(np.zeros(200, dtype=np.int64), 5)
        assert (out == 7).all()

    def test_near_dense_user_uniform_over_complement(self):
        ds = make_near_dense_dataset(n_items=50, free_items=(3, 17, 41))
        sampler = NegativeSampler(ds, seed=0)
        out = sampler.sample_for_users(np.zeros(400, dtype=np.int64), 4)
        assert set(np.unique(out).tolist()) == {3, 17, 41}

    def test_fully_dense_user_raises(self):
        ds = make_near_dense_dataset(n_items=6, free_items=())
        sampler = NegativeSampler(ds, seed=0)
        with pytest.raises(ValueError, match="interacted with all"):
            sampler.sample_for_users(np.zeros(3, dtype=np.int64), 2)

    def test_matches_seed_rejection_stream(self):
        # The vectorized sampler draws the same RNG stream as the
        # seed's Python loop, so seeded experiments are unchanged.
        ds = make_tiny_dataset()
        users = ds.users[:40]

        def legacy(seed, n_neg):
            rng = np.random.default_rng(seed)
            positives = ds.positives_by_user()
            out = rng.integers(0, ds.n_items, size=(users.size, n_neg))
            for _ in range(20):
                collision = np.zeros(out.shape, dtype=bool)
                for row, user in enumerate(users):
                    collision[row] = [int(i) in positives[user] for i in out[row]]
                if not collision.any():
                    break
                out[collision] = rng.integers(
                    0, ds.n_items, size=int(collision.sum()))
            return out

        for seed in (0, 5):
            np.testing.assert_array_equal(
                legacy(seed, 3),
                NegativeSampler(ds, seed=seed).sample_for_users(users, 3))

    def test_pairwise_training_set(self):
        ds = make_tiny_dataset()
        sampler = NegativeSampler(ds, seed=0)
        users, positives, negatives = sampler.build_pairwise_training_set(
            np.arange(ds.n_interactions), n_neg=2
        )
        assert users.size == 2 * ds.n_interactions
        pos_sets = ds.positives_by_user()
        for u, p, n in zip(users[:50], positives[:50], negatives[:50]):
            assert int(p) in pos_sets[u]
            assert int(n) not in pos_sets[u]


class TestRankingCandidates:
    def test_positive_in_column_zero(self):
        ds = make_tiny_dataset()
        test_users = ds.users[:5]
        test_items = ds.items[:5]
        candidates = sample_ranking_candidates(ds, test_users, test_items,
                                               n_candidates=7, seed=0)
        assert candidates.shape == (5, 8)
        np.testing.assert_array_equal(candidates[:, 0], test_items)

    def test_negative_candidates_uninteracted(self):
        ds = make_tiny_dataset()
        test_users = ds.users[:5]
        test_items = ds.items[:5]
        candidates = sample_ranking_candidates(ds, test_users, test_items,
                                               n_candidates=5, seed=0)
        positives = ds.positives_by_user()
        for row, user in enumerate(test_users):
            for item in candidates[row, 1:]:
                assert int(item) not in positives[user]
