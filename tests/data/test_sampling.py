"""Tests for negative sampling."""

import numpy as np
import pytest

from repro.data.sampling import NegativeSampler, sample_ranking_candidates
from tests.helpers import make_tiny_dataset


class TestNegativeSampler:
    def test_negatives_avoid_positives(self):
        ds = make_tiny_dataset()
        sampler = NegativeSampler(ds, seed=0)
        users = ds.users[:30]
        negatives = sampler.sample_for_users(users, 3)
        positives = ds.positives_by_user()
        for row, user in enumerate(users):
            for item in negatives[row]:
                assert int(item) not in positives[user]

    def test_shape(self):
        ds = make_tiny_dataset()
        out = NegativeSampler(ds, seed=0).sample_for_users(ds.users[:8], 4)
        assert out.shape == (8, 4)

    def test_reproducible(self):
        ds = make_tiny_dataset()
        a = NegativeSampler(ds, seed=1).sample_for_users(ds.users[:10], 2)
        b = NegativeSampler(ds, seed=1).sample_for_users(ds.users[:10], 2)
        np.testing.assert_array_equal(a, b)

    def test_pointwise_training_set_labels(self):
        ds = make_tiny_dataset()
        sampler = NegativeSampler(ds, seed=0)
        users, items, labels = sampler.build_pointwise_training_set(
            np.arange(ds.n_interactions), n_neg=2
        )
        assert users.size == 3 * ds.n_interactions
        assert (labels == 1).sum() == ds.n_interactions
        assert (labels == -1).sum() == 2 * ds.n_interactions

    def test_pointwise_training_set_shuffled(self):
        ds = make_tiny_dataset()
        sampler = NegativeSampler(ds, seed=0)
        _users, _items, labels = sampler.build_pointwise_training_set(
            np.arange(ds.n_interactions), n_neg=2
        )
        # Positives must not all be at the front after shuffling.
        first_third = labels[: ds.n_interactions]
        assert (first_third == 1).sum() < ds.n_interactions

    def test_pairwise_training_set(self):
        ds = make_tiny_dataset()
        sampler = NegativeSampler(ds, seed=0)
        users, positives, negatives = sampler.build_pairwise_training_set(
            np.arange(ds.n_interactions), n_neg=2
        )
        assert users.size == 2 * ds.n_interactions
        pos_sets = ds.positives_by_user()
        for u, p, n in zip(users[:50], positives[:50], negatives[:50]):
            assert int(p) in pos_sets[u]
            assert int(n) not in pos_sets[u]


class TestRankingCandidates:
    def test_positive_in_column_zero(self):
        ds = make_tiny_dataset()
        test_users = ds.users[:5]
        test_items = ds.items[:5]
        candidates = sample_ranking_candidates(ds, test_users, test_items,
                                               n_candidates=7, seed=0)
        assert candidates.shape == (5, 8)
        np.testing.assert_array_equal(candidates[:, 0], test_items)

    def test_negative_candidates_uninteracted(self):
        ds = make_tiny_dataset()
        test_users = ds.users[:5]
        test_items = ds.items[:5]
        candidates = sample_ranking_candidates(ds, test_users, test_items,
                                               n_candidates=5, seed=0)
        positives = ds.positives_by_user()
        for row, user in enumerate(test_users):
            for item in candidates[row, 1:]:
                assert int(item) not in positives[user]
