"""Lock-discipline rule family: seeded races are caught, the
caller-holds-lock delegation pattern is not a false positive."""

import pytest

from tests.lint.helpers import lint_fixture, rule_ids

pytestmark = pytest.mark.lint


def test_unguarded_write_hit():
    report = lint_fixture("locks", "unguarded_hit.py")
    assert rule_ids(report) == ["lock-unguarded-write"]
    finding = report.findings[0]
    assert "HitCounter.reset" in finding.message
    assert "self.count" in finding.message


def test_unguarded_write_caller_holds_lock_guard():
    """``bump`` takes the lock then delegates to ``_bump_locked``; the
    helper's bare writes are inferred lock-held because every call
    site holds the lock — this must NOT be flagged."""
    assert lint_fixture("locks", "unguarded_clean.py").ok


def test_blocking_under_lock_hit():
    report = lint_fixture("locks", "blocking_hit.py")
    assert rule_ids(report) == ["lock-blocking-call"]
    assert "time.sleep" in report.findings[0].message


def test_blocking_outside_lock_clean():
    assert lint_fixture("locks", "blocking_clean.py").ok
