"""The suppression mechanism (satellite contract): an allow comment
silences exactly its rule on its line, dangling ids are themselves
findings, and --strict demands justifications."""

import pytest

from tests.lint.helpers import lint_fixture, rule_ids

pytestmark = pytest.mark.lint


def test_allow_silences_exactly_that_line():
    report = lint_fixture("suppression", "suppressed.py")
    # The annotated hash() is silenced; the identical call three lines
    # down (no comment) still fires.
    assert rule_ids(report) == ["det-hash-builtin"]
    assert report.suppressed == 1
    assert report.findings[0].line == 9


def test_allow_naming_a_different_rule_suppresses_nothing():
    report = lint_fixture("suppression", "wrong_rule.py")
    assert rule_ids(report) == ["det-hash-builtin"]
    assert report.suppressed == 0


def test_unknown_rule_id_is_itself_a_finding():
    report = lint_fixture("suppression", "unknown_rule.py")
    ids = rule_ids(report)
    # The typo'd allow silences nothing (original finding survives),
    # and each dangling id is reported — including on the line that
    # tries to allow lint-unknown-rule itself (meta findings are
    # unsuppressable).
    assert ids.count("det-hash-builtin") == 1
    assert ids.count("lint-unknown-rule") == 2
    assert report.suppressed == 0


def test_multi_rule_allow_silences_both():
    report = lint_fixture("suppression", "multi_rule.py")
    assert report.ok
    assert report.suppressed == 2


def test_missing_justification_fine_by_default():
    report = lint_fixture("suppression", "no_justification.py")
    assert report.ok
    assert report.suppressed == 1


def test_missing_justification_is_a_finding_under_strict():
    report = lint_fixture("suppression", "no_justification.py", strict=True)
    assert rule_ids(report) == ["lint-no-justification"]
    assert report.suppressed == 1   # the hash finding stays silenced
    assert report.strict


def test_rule_subset_runs_only_selected_rules():
    report = lint_fixture("suppression", "wrong_rule.py",
                          rules=["det-unseeded-rng"])
    assert report.ok          # the hash rule was not selected
    assert report.rule_ids == ("det-unseeded-rng",)


def test_unknown_rule_subset_raises():
    with pytest.raises(ValueError, match="no-such-rule"):
        lint_fixture("suppression", "wrong_rule.py", rules=["no-such-rule"])
