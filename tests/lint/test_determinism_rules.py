"""Determinism rule family: each rule catches its seeded fixture and
passes the clean twin (incl. the monotonic carve-out and scoping)."""

import pytest

from tests.lint.helpers import lint_fixture, rule_ids

pytestmark = pytest.mark.lint


def test_unseeded_rng_catches_all_three_doors():
    report = lint_fixture("determinism", "unseeded_hit.py")
    assert rule_ids(report) == ["det-unseeded-rng"] * 3
    messages = " ".join(f.message for f in report.findings)
    assert "default_rng" in messages
    assert "np.random.shuffle" in messages
    assert "random.randint" in messages


def test_unseeded_rng_clean_twin():
    assert lint_fixture("determinism", "unseeded_clean.py").ok


def test_hash_builtin_hit_and_clean():
    report = lint_fixture("determinism", "hash_hit.py")
    assert rule_ids(report) == ["det-hash-builtin"]
    assert lint_fixture("determinism", "hash_clean.py").ok


def test_set_iteration_hit():
    report = lint_fixture("determinism", "set_iter_hit.py")
    assert rule_ids(report) == ["det-set-iteration"] * 2


def test_set_iteration_clean_twin_exempts_reducers():
    # sorted()/sum()/max() consumers, set comprehensions, and plain
    # list iteration must all stay silent.
    assert lint_fixture("determinism", "set_iter_clean.py").ok


def test_wallclock_scoped_to_scoring_modules():
    report = lint_fixture("scoring")
    assert set(rule_ids(report)) == {"det-wallclock"}
    assert len(report.findings) == 4
    # All four findings are in the serving-scoped hit file; the clean
    # twin (monotonic/perf_counter only) and the out-of-scope file
    # (time.time outside serving/) contribute nothing.
    assert all(f.path.endswith("serving/wallclock_hit.py")
               for f in report.findings)


def test_wallclock_monotonic_carveout():
    assert lint_fixture("scoring", "serving", "wallclock_clean.py").ok


def test_wallclock_silent_outside_scope():
    # Linting the file directly makes its scoped path just the file
    # name, which no SCORING_SCOPE prefix matches.
    assert lint_fixture("scoring", "other", "wallclock_elsewhere.py").ok
