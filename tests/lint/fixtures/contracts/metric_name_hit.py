"""Seeded violations for obs-metric-name (three findings: counter
without _total, histogram without unit suffix, non-snake_case name)."""


def instrument(registry):
    hits = registry.counter("cache_hits")
    latency = registry.histogram("request_latency")
    bad = registry.counter("Bad-Name_total")
    return hits, latency, bad
