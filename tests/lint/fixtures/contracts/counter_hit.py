"""Seeded violation for reg-counter-int: a property leaking a raw
(float) metric value (one finding)."""


class CacheStats:
    @property
    def hits(self):
        return self._m_hits.value
