"""Clean twin: metric-backed properties wrap the value in int()."""


class CacheStats:
    @property
    def hits(self):
        return int(self._m_hits.value)

    @property
    def ratio(self):
        return self._cached_ratio

    def raw_value(self):
        return self._m_hits.value
