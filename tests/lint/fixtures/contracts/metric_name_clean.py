"""Clean twin: convention-following names, f-string names with a
constant suffix, and non-registry receivers that must stay exempt."""

from collections import Counter


def instrument(registry, stats, prefix):
    hits = registry.counter("cache_hits_total")
    latency = registry.histogram("request_latency_seconds")
    depth = registry.gauge("queue_depth")
    shard_hits = registry.counter(f"{prefix}_hits_total")
    flushed = registry.histogram(name="flush_bytes")
    tally = Counter(["a", "b"])
    unrelated = stats.counter("Not-A-Metric")
    return hits, latency, depth, shard_hits, flushed, tally, unrelated
