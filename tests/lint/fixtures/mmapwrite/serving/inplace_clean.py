"""Fixture: sanctioned patterns that must NOT trip ``mmap-write``.

Rebinding ``.data`` (the copy-on-first-write pattern), mutating arrays
that are not parameter storage, and read-only uses of ``.data``.
"""

import numpy as np


def rebind_private_copy(param):
    param.data = param.data.copy()


def rebind_computed(param, delta):
    param.data = param.data + delta


def mutate_own_scores(scores, mask):
    # Scratch arrays the serving code itself allocated are fair game.
    scores[mask] = -np.inf
    scores += 1.0
    return scores


def read_only_uses(param, rows):
    norm = float(np.linalg.norm(param.data))
    gathered = param.data[rows]
    return norm, gathered.copy()
