"""Fixture: every in-place parameter-storage mutation form is flagged."""

import numpy as np


def subscript_store(param, rows, values):
    param.data[rows] = values


def subscript_augmented(param, rows, grad, lr):
    param.data[rows] -= lr * grad[rows]


def augmented_whole_table(param, delta):
    param.data += delta


def method_mutation(param):
    param.data.fill(0.0)


def numpy_helper(param, values):
    np.copyto(param.data, values)
