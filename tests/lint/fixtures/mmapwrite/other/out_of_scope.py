"""Fixture: the same mutations outside ``serving/`` are in scope for
the training fold-in path and must not be flagged."""


def fold_in_step(param, rows, grad, lr):
    param.data[rows] -= lr * grad[rows]
