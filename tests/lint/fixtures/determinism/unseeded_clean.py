"""Clean twin: every RNG stream is explicitly seeded."""

import numpy as np
from numpy.random import default_rng


def draw(items, seed):
    rng = default_rng(seed)
    other = np.random.default_rng(0)
    rng.shuffle(items)
    state = np.random.RandomState(seed)
    return rng, other, state
