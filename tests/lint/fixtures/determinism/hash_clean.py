"""Clean twin: stable key derivation without builtin hash()."""

import zlib


def category_seed(category):
    return zlib.crc32(category.encode("utf-8")) % 1000


def method_named_hash_is_fine(hasher, category):
    return hasher.hash(category)
