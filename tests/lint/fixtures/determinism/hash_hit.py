"""Seeded violation for det-hash-builtin (one finding)."""


def category_seed(category):
    return hash(category) % 1000
