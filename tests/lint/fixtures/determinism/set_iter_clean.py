"""Clean twin: sets are sorted first or feed order-insensitive reducers."""


def ordered_from_sets(names, extra, lengths):
    out = []
    for name in sorted(set(names) - set(extra)):
        out.append(name)
    total = sum(n for n in set(lengths))
    longest = max(len(n) for n in set(names))
    unique = {n.lower() for n in set(names)}
    rows = sorted([n.upper() for n in set(names)])
    for item in names:
        out.append(item)
    return out, total, longest, unique, rows
