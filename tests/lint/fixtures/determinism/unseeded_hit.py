"""Seeded violations for det-unseeded-rng (three findings)."""

import random

import numpy as np
from numpy.random import default_rng


def draw(items):
    rng = default_rng()
    np.random.shuffle(items)
    return rng, random.randint(0, len(items))
