"""Seeded violations for det-set-iteration (two findings)."""


def ordered_from_sets(names, extra):
    out = []
    for name in set(names) - set(extra):
        out.append(name)
    rows = [name.upper() for name in {n for n in names}]
    return out, rows
