"""Seeded violations for det-wallclock in a serving-scoped file
(four findings: time.time, datetime.now, uuid4, os.urandom)."""

import datetime
import os
import time
import uuid


def respond(user):
    return {
        "user": user,
        "ts": time.time(),
        "when": datetime.datetime.now().isoformat(),
        "request_id": str(uuid.uuid4()),
        "nonce": os.urandom(8).hex(),
    }
