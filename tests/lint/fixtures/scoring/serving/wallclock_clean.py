"""Clean twin: only monotonic measurement clocks (the carve-out)."""

import time


def timed_respond(user, score_fn, request_ts):
    start = time.monotonic()
    t0 = time.perf_counter()
    items = score_fn(user)
    elapsed = time.perf_counter() - t0
    return {"user": user, "items": items, "ts": request_ts,
            "elapsed": elapsed, "queued": time.monotonic() - start}
