"""Wall-clock reads outside SCORING_SCOPE: det-wallclock must not fire
(the rule is scoped to serving/, experiments/, training/evaluation.py)."""

import time


def log_line(message):
    return f"{time.time():.3f} {message}"
