"""Seeded violation for lock-blocking-call: sleeping while every other
thread convoys behind the held lock (one finding)."""

import threading
import time


class Poller:
    def __init__(self):
        self._lock = threading.Lock()

    def wait_turn(self):
        with self._lock:
            time.sleep(0.01)
