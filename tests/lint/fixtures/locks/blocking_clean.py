"""Clean twin: the sleep happens outside the locked region."""

import threading
import time


class PolitePoller:
    def __init__(self):
        self._lock = threading.Lock()
        self.ready = False

    def wait_turn(self):
        time.sleep(0.01)
        with self._lock:
            self.ready = True
