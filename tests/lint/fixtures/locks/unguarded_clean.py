"""Clean twin, including the caller-holds-lock pattern: every call
site of ``_bump_locked`` holds the lock, so its bare write is inferred
lock-held (the false-positive guard the rule must not trip on)."""

import threading


class CleanCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.history = {}

    def bump(self):
        with self._lock:
            self._bump_locked()

    def bump_many(self, n):
        with self._lock:
            for _ in range(n):
                self._bump_locked()

    def _bump_locked(self):
        self.count += 1
        self.history[self.count] = True

    def on_change(self):
        def callback():
            self.count += 1
        return callback
