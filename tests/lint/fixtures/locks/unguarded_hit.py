"""Seeded violation for lock-unguarded-write: ``reset`` writes an
attribute that ``bump`` guards with the lock (one finding)."""

import threading


class HitCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def reset(self):
        self.count = 0
