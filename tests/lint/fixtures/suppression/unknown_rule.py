"""A typo'd rule id: the original finding survives AND the engine
emits lint-unknown-rule for the dangling allow."""


def stable_key(name):
    return hash(name)  # repro: allow(det-hash-bulitin): typo silences nothing


def try_to_silence_the_checker(value):
    return value  # repro: allow(no-such-rule, lint-unknown-rule): meta findings are unsuppressable
