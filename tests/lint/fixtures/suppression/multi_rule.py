"""One allow comment naming two rules silences both on its line."""


def noisy(names):
    return [hash(n) for n in {str(x) for x in names}]  # repro: allow(det-hash-builtin, det-set-iteration): fixture exercises the multi-id allow grammar
