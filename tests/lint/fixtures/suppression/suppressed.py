"""An allow comment silences its rule on its line — and nothing else."""


def stable_key(name):
    return hash(name)  # repro: allow(det-hash-builtin): single-process cache key, never persisted


def unstable_key(name):
    return hash(name)
