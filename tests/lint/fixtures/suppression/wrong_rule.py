"""An allow naming a *different* (but real) rule suppresses nothing:
the det-hash-builtin finding must survive."""


def stable_key(name):
    return hash(name)  # repro: allow(det-unseeded-rng): names the wrong rule on purpose
