"""A justification-less allow: fine by default, a finding under --strict."""


def stable_key(name):
    return hash(name)  # repro: allow(det-hash-builtin)
