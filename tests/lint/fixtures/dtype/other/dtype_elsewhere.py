"""Out-of-scope twin: hard-coded dtypes outside models/ and training/
(serving/analysis planes pin float64 deliberately)."""

import numpy as np


def pinned_scores(n):
    return np.empty(n, dtype=np.float64)
