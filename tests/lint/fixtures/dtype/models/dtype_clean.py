"""Clean twin: dtypes derived from the backend seam or existing arrays."""

import numpy as np

from repro.autograd.backend import active_dtype


def build_tables(param, n):
    fresh = np.zeros(n, dtype=active_dtype())
    follow = np.ones(n, dtype=param.data.dtype)
    integers = np.arange(n, dtype=np.int64)
    return fresh, follow, integers
