"""Seeded violations for dtype-hardcoded in a models-scoped file
(four findings: np.float64, np.float32, numpy.float64, DTYPE)."""

import numpy
import numpy as np

from repro.autograd.tensor import DTYPE


def build_tables(n):
    scores = np.zeros(n, dtype=np.float64)
    weights = np.ones(n, dtype=np.float32)
    bias = numpy.empty(n, dtype=numpy.float64)
    legacy = np.full(n, 0.0, dtype=DTYPE)
    return scores, weights, bias, legacy
