"""Mmap-write rule family: in-place parameter-storage mutation inside
``serving/`` is flagged; rebinding and scratch-array mutation are not."""

import pytest

from tests.lint.helpers import lint_fixture, rule_ids

pytestmark = pytest.mark.lint


def test_every_inplace_form_hits_and_scope_is_serving_only():
    report = lint_fixture("mmapwrite")
    assert set(rule_ids(report)) == {"mmap-write"}
    # Five findings — subscript store, subscript augmented store,
    # whole-table augmented assignment, .fill(), np.copyto — all in the
    # serving-scoped hit file.  The clean twin and the identical
    # fold-in mutation outside serving/ contribute nothing.
    assert len(report.findings) == 5
    assert all(f.path.endswith("serving/inplace_hit.py")
               for f in report.findings)
    messages = " ".join(f.message for f in report.findings)
    assert "subscript store" in messages
    assert "augmented assignment" in messages
    assert ".data.fill" in messages
    assert "np.copyto" in messages


def test_clean_twin_is_silent():
    assert lint_fixture("mmapwrite", "serving", "inplace_clean.py").ok
