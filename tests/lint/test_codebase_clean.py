"""The gate: the shipped package passes its own checker, strictly.

This is the tier-1 contract `repro lint` exists to enforce — any new
unseeded RNG, salted hash, wall-clock scoring read, guarded-sometimes
attribute, or registry-hook drift anywhere under src/repro fails this
test (and `repro serve --selfcheck`, which runs the same gate).
"""

import pytest

from repro.cli import main
from repro.lint.engine import default_target, run_lint

pytestmark = pytest.mark.lint


def test_src_repro_is_violation_free_strict():
    report = run_lint(strict=True)
    assert default_target().name == "repro"
    assert report.files_checked > 50
    assert report.ok, (
        "repro lint --strict found violations in the shipped package:\n"
        + "\n".join(f.format() for f in report.findings))


def test_every_suppression_carries_a_justification():
    # The codebase's own allow comments are part of the contract:
    # strict mode would surface justification-less ones above, but
    # assert the count explicitly so a sweep of new annotations shows
    # up in review.
    report = run_lint(strict=True)
    assert report.suppressed == 23


def test_cli_gate_exits_zero(capsys):
    assert main(["lint", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "[strict]" in out
