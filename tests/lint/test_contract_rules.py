"""Registry-contract rule family: the live registry satisfies the
contracts, and deliberately broken classes are caught."""

import pytest

from repro.lint.contracts import check_model_contracts, registry_model_classes
from repro.models.base import RecommenderModel
from tests.lint.helpers import lint_fixture, rule_ids

pytestmark = pytest.mark.lint


def test_live_registry_satisfies_contracts():
    models = registry_model_classes()
    # 13 paper-table models + MAMO (serving-only, scenario engine).
    assert len(models) == 14
    assert "MAMO" in models
    assert check_model_contracts(models) == []


def test_grid_pair_violation_detected():
    class HalfGrid(RecommenderModel):
        def grid_factor_items(self):
            return None

        def fold_in_targets(self):
            return []

    findings = check_model_contracts({"HalfGrid": HalfGrid})
    assert [f.rule_id for f in findings] == ["reg-grid-pair"]
    assert "grid_factor_users" in findings[0].message
    assert findings[0].path.endswith("test_contract_rules.py")


def test_fold_in_violation_detected():
    class NoFoldIn(RecommenderModel):
        pass

    findings = check_model_contracts({"NoFoldIn": NoFoldIn})
    assert [f.rule_id for f in findings] == ["reg-fold-in"]


def test_paired_overrides_are_clean():
    class FullGrid(RecommenderModel):
        def grid_factor_items(self):
            return None

        def grid_factor_users(self):
            return None

        def fold_in_targets(self):
            return []

    assert check_model_contracts({"FullGrid": FullGrid}) == []


def test_counter_property_int_hit_and_clean():
    report = lint_fixture("contracts", "counter_hit.py")
    assert rule_ids(report) == ["reg-counter-int"]
    assert lint_fixture("contracts", "counter_clean.py").ok


def test_metric_name_convention_hit():
    report = lint_fixture("contracts", "metric_name_hit.py")
    assert rule_ids(report) == ["obs-metric-name"] * 3
    messages = " ".join(f.message for f in report.findings)
    assert "_total" in messages
    assert "unit" in messages
    assert "snake_case" in messages


def test_metric_name_convention_clean_and_receiver_guard():
    # collections.Counter() and non-registry receivers stay exempt.
    assert lint_fixture("contracts", "metric_name_clean.py").ok
