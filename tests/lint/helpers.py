"""Shared plumbing for the lint test suite."""

from pathlib import Path

from repro.lint.engine import run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint_fixture(*parts, strict=False, rules=None):
    """Lint one fixture file/dir with the AST rules only (no registry)."""
    return run_lint(paths=[FIXTURES.joinpath(*parts)], strict=strict,
                    project_rules=False, rule_ids=rules)


def rule_ids(report):
    return [finding.rule_id for finding in report.findings]
