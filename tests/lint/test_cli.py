"""``repro lint`` CLI surface: exit codes, text/JSON output, discovery."""

import json

import pytest

from repro.cli import main
from repro.lint.engine import Finding, discover
from tests.lint.helpers import FIXTURES

pytestmark = pytest.mark.lint


def test_exit_one_on_findings(capsys):
    target = str(FIXTURES / "determinism" / "hash_hit.py")
    assert main(["lint", target, "--no-registry"]) == 1
    out = capsys.readouterr().out
    assert "[det-hash-builtin]" in out
    assert "1 finding(s)" in out


def test_exit_zero_on_clean(capsys):
    target = str(FIXTURES / "determinism" / "hash_clean.py")
    assert main(["lint", target, "--no-registry"]) == 0
    assert "clean" in capsys.readouterr().out


def test_json_report_shape(capsys):
    target = str(FIXTURES / "determinism" / "unseeded_hit.py")
    assert main(["lint", target, "--no-registry", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert "det-unseeded-rng" in payload["rules"]
    assert len(payload["findings"]) == 3
    finding = payload["findings"][0]
    assert set(finding) == {"path", "line", "rule", "message"}


def test_rules_flag_restricts_the_run(capsys):
    target = str(FIXTURES / "determinism" / "unseeded_hit.py")
    assert main(["lint", target, "--no-registry",
                 "--rules", "det-hash-builtin"]) == 0
    assert "clean" in capsys.readouterr().out


def test_finding_format_is_clickable():
    finding = Finding("src/repro/x.py", 12, "det-hash-builtin", "boom")
    assert finding.format() == "src/repro/x.py:12: [det-hash-builtin] boom"


def test_discover_rejects_missing_path():
    with pytest.raises(FileNotFoundError):
        discover([FIXTURES / "does-not-exist.py"])


def test_discover_skips_pycache(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "mod.cpython-311.py").write_text("x = 1\n")
    files = [file for file, _ in discover([tmp_path])]
    assert files == [tmp_path / "mod.py"]
