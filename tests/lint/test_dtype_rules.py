"""dtype-hardcoded: precision literals stay behind the backend seam."""

import pytest

from tests.lint.helpers import lint_fixture, rule_ids

pytestmark = pytest.mark.lint


def test_hardcoded_dtype_scoped_to_models_and_training():
    report = lint_fixture("dtype")
    assert set(rule_ids(report)) == {"dtype-hardcoded"}
    # Four findings, all in the models-scoped hit file: np.float64,
    # np.float32, numpy.float64 and the legacy DTYPE constant.  The
    # clean twin (active_dtype()/param dtype/int dtype) and the
    # out-of-scope file contribute nothing.
    assert len(report.findings) == 4
    assert all(f.path.endswith("models/dtype_hit.py")
               for f in report.findings)


def test_clean_twin_is_silent():
    assert lint_fixture("dtype", "models", "dtype_clean.py").ok


def test_integer_dtypes_are_exempt():
    # np.int64 in the clean twin must not fire: the rule names only
    # float precision literals.
    report = lint_fixture("dtype", "models", "dtype_clean.py")
    assert rule_ids(report) == []
