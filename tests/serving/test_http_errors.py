"""HTTP error paths: malformed input must map to 4xx, never 500.

The happy-path e2e lives in ``test_http.py``; this module drives every
rejection branch of the GET and POST handlers over a real socket.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.experiments.registry import build_model
from repro.serving.server import build_server
from repro.serving.service import RecommendationService
from repro.training.online import OnlineConfig
from tests.helpers import make_tiny_dataset

pytestmark = [pytest.mark.serving, pytest.mark.streaming]

MAX_BATCH = 8


@pytest.fixture(scope="module")
def server():
    import threading

    dataset = make_tiny_dataset(seed=0)
    model = build_model("MF", dataset, k=4, seed=0)
    service = RecommendationService(
        model, dataset, top_k=3, cache_size=64,
        online_config=OnlineConfig(sides=("user",), seed=0))
    server = build_server(service, max_update_batch=MAX_BATCH)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(server, body, path="/update"):
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(
        server.url + path, data=data, method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestRecommendErrors:
    def test_missing_user(self, server):
        status, payload = get(server, "/recommend")
        assert status == 400
        assert "user" in payload["error"]

    def test_non_integer_user(self, server):
        status, payload = get(server, "/recommend?user=alice")
        assert status == 400
        assert "integer" in payload["error"]

    def test_unknown_user_id(self, server):
        status, payload = get(server, "/recommend?user=100000")
        assert status == 400
        assert "out of range" in payload["error"]

    def test_negative_user_id(self, server):
        status, _ = get(server, "/recommend?user=-1")
        assert status == 400

    def test_non_integer_k(self, server):
        status, _ = get(server, "/recommend?user=0&k=ten")
        assert status == 400

    def test_int64_overflow_user_is_a_client_error(self, server):
        status, _ = get(server, f"/recommend?user={2 ** 70}")
        assert status == 400

    def test_non_positive_k(self, server):
        status, payload = get(server, "/recommend?user=0&k=0")
        assert status == 400
        assert "top_k" in payload["error"]

    def test_oversized_k(self, server):
        status, payload = get(server, "/recommend?user=0&k=10000")
        assert status == 400
        assert "top_k" in payload["error"]

    def test_unknown_path(self, server):
        status, _ = get(server, "/nope")
        assert status == 404


class TestUpdateErrors:
    def test_malformed_json(self, server):
        status, payload = post(server, b"{oops")
        assert status == 400
        assert "malformed JSON" in payload["error"]

    def test_empty_body(self, server):
        status, payload = post(server, b"")
        assert status == 400
        assert "empty request body" in payload["error"]

    def test_non_object_body(self, server):
        status, payload = post(server, b"[1, 2]")
        assert status == 400
        assert "object" in payload["error"]

    def test_missing_fields(self, server):
        status, payload = post(server, {"user": 0})
        assert status == 400
        assert "events" in payload["error"]

    def test_non_integer_ids(self, server):
        for body in ({"user": "0", "item": 1},
                     {"user": 0, "item": 1.5},
                     {"user": True, "item": 1}):
            status, payload = post(server, body)
            assert status == 400
            assert "integer" in payload["error"]

    def test_unknown_user_id(self, server):
        status, payload = post(server, {"user": 100000, "item": 0})
        assert status == 400
        assert "out of range" in payload["error"]

    def test_unknown_item_id(self, server):
        status, payload = post(server, {"user": 0, "item": 100000})
        assert status == 400
        assert "out of range" in payload["error"]

    def test_int64_overflow_ids_are_a_client_error(self, server):
        status, _ = post(server, {"user": 2 ** 70, "item": 0})
        assert status == 400

    def test_empty_events_list(self, server):
        status, payload = post(server, {"events": []})
        assert status == 400
        assert "non-empty" in payload["error"]

    def test_bad_event_shape(self, server):
        status, payload = post(server, {"events": [[0, 1, 2]]})
        assert status == 400
        assert "each event" in payload["error"]

    def test_oversized_body_rejected_before_parsing(self, server):
        """The byte cap must bound memory, not just event counts."""
        padding = "x" * (server.max_body_bytes + 1)
        status, payload = post(server, {"user": 0, "item": 1,
                                        "padding": padding})
        assert status == 400
        assert "bytes exceeds" in payload["error"]

    def test_oversized_body_past_socket_buffers_still_gets_400(self, server):
        """Regression: the rejected body must be drained, not abandoned.

        A body much larger than the loopback socket buffers leaves the
        client blocked mid-send; if the server answers without reading,
        the client sees a connection reset instead of the 400.
        """
        padding = "x" * (4 << 20)
        status, payload = post(server, {"user": 0, "item": 1,
                                        "padding": padding})
        assert status == 400
        assert "bytes exceeds" in payload["error"]

    def test_oversized_batch(self, server):
        events = [[0, 1]] * (MAX_BATCH + 1)
        status, payload = post(server, {"events": events})
        assert status == 400
        assert "exceeds the limit" in payload["error"]

    def test_bad_batch_rejected_atomically(self, server):
        """A batch with one bad id must not partially ingest."""
        before = server.service.stats()["interactions_added"]
        status, _ = post(server, {"events": [[0, 2], [0, 100000]]})
        assert status == 400
        assert server.service.stats()["interactions_added"] == before

    def test_post_unknown_path(self, server):
        status, _ = post(server, {"user": 0, "item": 1}, path="/recommend")
        assert status == 404


class TestOnlineConfigSelection:
    def test_serve_online_uses_the_model_objective(self):
        """`serve --online` must fold in pairwise-trained models with
        BPR steps, not squared loss toward ±1."""
        import argparse

        from repro.serving.server import _build_service

        def args_for(model):
            return argparse.Namespace(
                artifact=None, dataset="amazon-auto", model=model,
                scale="quick", seed=0, k=4, epochs=0, top_k=5,
                cache_size=16, online=True)

        assert _build_service(
            args_for("BPR-MF")).online.config.objective == "pairwise"
        assert _build_service(
            args_for("MF")).online.config.objective == "pointwise"


class TestUpdateHappyPath:
    def test_single_event_folds_in(self, server):
        status, payload = post(server, {"user": 1, "item": 2})
        assert status == 200
        assert payload["events"] == 1
        assert payload["folded_in"] is True
        assert "loss" in payload

    def test_batch_events_list_of_pairs_and_dicts(self, server):
        status, payload = post(
            server, {"events": [[2, 3], {"user": 3, "item": 4}]})
        assert status == 200
        assert payload["events"] == 2

    def test_update_invalidates_only_touched_users(self, server):
        service = server.service
        get(server, "/recommend?user=4")
        get(server, "/recommend?user=5")
        assert (4, 3, True) in service.cache and (5, 3, True) in service.cache
        item = int(get(server, "/recommend?user=4")[1]["items"][0])
        status, payload = post(server, {"user": 4, "item": item})
        assert status == 200
        # User-side fold-in: user 4's entry dropped, user 5's survives.
        assert (4, 3, True) not in service.cache
        assert (5, 3, True) in service.cache

    def test_stats_count_fold_ins(self, server):
        assert server.service.stats()["updates_folded_in"] > 0
        assert server.service.stats()["online_updates"] is True
