"""Cross-layout artifact guarantees: legacy ``.npz`` bundles convert to
the manifest layout and serve identical ranked lists (memory-mapped or
not), saves are byte-deterministic, and pre-manifest bundles written
before the layout existed keep loading."""

import json

import numpy as np
import pytest

from repro.experiments.registry import (RATING_MODELS, SERVING_ONLY_MODELS,
                                        TOPN_MODELS, build_model)
from repro.serving.artifact import (ARTIFACT_VERSION, MANIFEST_NAME,
                                    convert_artifact, detect_layout,
                                    load_artifact, save_artifact)
from repro.serving.service import RecommendationService
from tests.helpers import make_tiny_dataset

pytestmark = pytest.mark.serving

ALL_MODELS = sorted(set(RATING_MODELS) | set(TOPN_MODELS)
                    | set(SERVING_ONLY_MODELS))


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(n_users=14, n_items=22)


def ranked_lists(model, ds, n_users=5):
    """Full descending item ranking per user — exact, not approximate."""
    items = np.arange(ds.n_items, dtype=np.int64)
    out = []
    for user in range(n_users):
        scores = model.predict(np.full(ds.n_items, user, dtype=np.int64),
                               items)
        # Stable sort so equal scores break ties identically.
        out.append(np.argsort(-scores, kind="stable").tolist())
    return out


class TestNpzToManifestMigration:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_converted_bundle_serves_identical_rankings(self, name, ds,
                                                        tmp_path):
        model = build_model(name, ds, k=8, seed=0,
                            train_users=ds.users, train_items=ds.items)
        npz = save_artifact(model, ds, str(tmp_path / "legacy"), name,
                            {"k": 8})
        assert detect_layout(npz) == "npz"

        converted = convert_artifact(npz, str(tmp_path / "bundle"))
        assert detect_layout(converted) == "dir"

        want = ranked_lists(model, ds)
        for mmap in (False, True):
            loaded = load_artifact(converted, mmap=mmap)
            assert loaded.layout == "dir"
            assert loaded.mmap is mmap
            assert ranked_lists(loaded.model, ds) == want

    def test_graph_split_survives_conversion(self, ds, tmp_path):
        half = ds.n_interactions // 2
        model = build_model("NGCF", ds, k=8, seed=0,
                            train_users=ds.users[:half],
                            train_items=ds.items[:half])
        npz = save_artifact(
            model, ds, str(tmp_path / "legacy"), "NGCF", {"k": 8},
            train_interactions=(ds.users[:half], ds.items[:half]))
        converted = convert_artifact(npz, str(tmp_path / "bundle"))
        loaded = load_artifact(converted, mmap=True)
        assert ranked_lists(loaded.model, ds) == ranked_lists(model, ds)

    def test_mmap_parameters_are_readonly_views(self, ds, tmp_path):
        model = build_model("BPR-MF", ds, k=8, seed=0)
        path = save_artifact(model, ds, str(tmp_path / "b"), "BPR-MF",
                             {"k": 8}, layout="dir")
        loaded = load_artifact(path, mmap=True)
        params = dict(loaded.model.named_parameters())
        assert params
        for param in params.values():
            assert not param.data.flags.writeable
        with pytest.raises(ValueError):
            next(iter(params.values())).data[...] = 0.0

    def test_service_boots_from_mmap_bundle(self, ds, tmp_path):
        model = build_model("MF", ds, k=8, seed=0)
        path = save_artifact(model, ds, str(tmp_path / "b"), "MF", {"k": 8},
                             layout="dir")
        plain = RecommendationService.from_artifact(path, top_k=5,
                                                    cache_size=0)
        mapped = RecommendationService.from_artifact(path, mmap=True,
                                                     top_k=5, cache_size=0)
        for user in range(5):
            assert (mapped.recommend(user).to_dict()
                    == plain.recommend(user).to_dict())


class TestDeterministicSaves:
    def test_npz_save_is_byte_identical(self, ds, tmp_path):
        model = build_model("GML-FMmd", ds, k=8, seed=1)
        a = save_artifact(model, ds, str(tmp_path / "a"), "GML-FMmd",
                          {"k": 8, "seed": 1})
        b = save_artifact(model, ds, str(tmp_path / "b"), "GML-FMmd",
                          {"k": 8, "seed": 1})
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_dir_save_is_byte_identical(self, ds, tmp_path):
        model = build_model("GML-FMmd", ds, k=8, seed=1)
        paths = [save_artifact(model, ds, str(tmp_path / sub), "GML-FMmd",
                               {"k": 8, "seed": 1}, layout="dir")
                 for sub in ("a", "b")]
        from pathlib import Path

        files = [sorted(p.relative_to(root) for p in Path(root).rglob("*")
                        if p.is_file()) for root in paths]
        assert files[0] == files[1]
        for rel in files[0]:
            assert ((Path(paths[0]) / rel).read_bytes()
                    == (Path(paths[1]) / rel).read_bytes()), rel

    def test_resave_drops_stale_arrays(self, ds, tmp_path):
        big = build_model("MF", ds, k=8, seed=0)
        small = build_model("MF", ds, k=4, seed=0)
        root = str(tmp_path / "b")
        save_artifact(big, ds, root, "MF", {"k": 8}, layout="dir")
        save_artifact(small, ds, root, "MF", {"k": 4}, layout="dir")
        loaded = load_artifact(root, mmap=True)
        assert loaded.hyperparams["k"] == 4
        # No stale files: a third save changes nothing on disk.
        from pathlib import Path

        before = {p: p.read_bytes() for p in Path(root).rglob("*")
                  if p.is_file()}
        save_artifact(small, ds, root, "MF", {"k": 4}, layout="dir")
        after = {p: p.read_bytes() for p in Path(root).rglob("*")
                 if p.is_file()}
        assert before == after


class TestBackwardCompat:
    def test_pre_manifest_bundle_still_loads(self, ds, tmp_path):
        """A version-1 bundle written before this layout existed (plain
        ``np.savez``, no graph split, no determinism) must keep loading
        through the service entry point."""
        model = build_model("MF", ds, k=8, seed=0)
        state = model.state_dict()
        meta = {
            "format": "repro-artifact",
            "version": 1,
            "model": "MF",
            "hyperparams": {"k": 8, "seed": 0},
            "dataset": {
                "name": ds.name,
                "n_users": ds.n_users,
                "n_items": ds.n_items,
                "user_attrs": list(ds.user_attrs),
                "item_attrs": list(ds.item_attrs),
            },
            "parameters": sorted(state),
        }
        arrays = {
            "interactions::users": ds.users,
            "interactions::items": ds.items,
            "interactions::timestamps": ds.timestamps,
        }
        for side, attrs in (("user", ds.user_attrs), ("item", ds.item_attrs)):
            for name, (idx, val) in attrs.items():
                arrays[f"attr::{side}::{name}::indices"] = idx
                arrays[f"attr::{side}::{name}::values"] = val
        for name, value in state.items():
            arrays[f"param::{name}"] = value
        path = str(tmp_path / "old.npz")
        np.savez(path, __meta__=np.array(json.dumps(meta)), **arrays)

        service = RecommendationService.from_artifact(path, top_k=5,
                                                      cache_size=0)
        direct = RecommendationService(model, ds, top_k=5, cache_size=0)
        for user in range(5):
            assert (service.recommend(user).to_dict()
                    == direct.recommend(user).to_dict())

    def test_future_version_rejected(self, ds, tmp_path):
        model = build_model("MF", ds, k=8, seed=0)
        path = save_artifact(model, ds, str(tmp_path / "b"), "MF", {"k": 8},
                             layout="dir")
        from pathlib import Path

        manifest_path = Path(path) / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = ARTIFACT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="newer than supported"):
            load_artifact(path)


class TestErrorPaths:
    def test_mmap_on_npz_has_migration_hint(self, ds, tmp_path):
        model = build_model("MF", ds, k=8, seed=0)
        path = save_artifact(model, ds, str(tmp_path / "b"), "MF", {"k": 8})
        with pytest.raises(ValueError, match="convert_artifact"):
            load_artifact(path, mmap=True)

    def test_foreign_directory_refused_at_save(self, ds, tmp_path):
        target = tmp_path / "precious"
        target.mkdir()
        (target / "notes.txt").write_text("do not clobber")
        model = build_model("MF", ds, k=8, seed=0)
        with pytest.raises(ValueError, match="refusing to overwrite"):
            save_artifact(model, ds, str(target), "MF", {"k": 8},
                          layout="dir")
        assert (target / "notes.txt").read_text() == "do not clobber"

    def test_directory_without_manifest_rejected_at_load(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError, match="not a repro artifact"):
            load_artifact(str(tmp_path / "empty"))

    def test_convert_requires_distinct_paths(self, ds, tmp_path):
        model = build_model("MF", ds, k=8, seed=0)
        path = save_artifact(model, ds, str(tmp_path / "b"), "MF", {"k": 8},
                             layout="dir")
        with pytest.raises(ValueError, match="distinct"):
            convert_artifact(path, path)

    def test_unknown_layout_rejected(self, ds, tmp_path):
        model = build_model("MF", ds, k=8, seed=0)
        with pytest.raises(ValueError, match="unknown layout"):
            save_artifact(model, ds, str(tmp_path / "b"), "MF", {"k": 8},
                          layout="tar")
