"""Artifact bundles reconstruct model + dataset in a fresh process."""

import numpy as np
import pytest

from repro.experiments.registry import RATING_MODELS, TOPN_MODELS, build_model
from repro.serving.artifact import load_artifact, save_artifact
from tests.helpers import make_tiny_dataset

pytestmark = pytest.mark.serving

ALL_MODELS = sorted(set(RATING_MODELS) | set(TOPN_MODELS))


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(n_users=14, n_items=22)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_every_registry_model(self, name, ds, tmp_path):
        model = build_model(name, ds, k=8, seed=0,
                           train_users=ds.users, train_items=ds.items)
        path = save_artifact(model, ds, str(tmp_path / "bundle"), name, {"k": 8})
        loaded = load_artifact(path)

        assert loaded.model_name == name
        assert loaded.dataset.n_users == ds.n_users
        assert loaded.dataset.n_items == ds.n_items
        users, items = ds.users[:30], ds.items[:30]
        np.testing.assert_allclose(
            loaded.model.predict(users, items), model.predict(users, items),
            rtol=1e-12, atol=1e-12,
        )

    def test_dataset_encoding_survives(self, ds, tmp_path):
        model = build_model("LibFM", ds, k=8, seed=0)
        path = save_artifact(model, ds, str(tmp_path / "b"), "LibFM")
        loaded = load_artifact(path)
        assert loaded.dataset.n_features == ds.n_features
        assert list(loaded.dataset.item_attrs) == list(ds.item_attrs)
        idx_a, val_a = ds.encode(ds.users[:10], ds.items[:10])
        idx_b, val_b = loaded.dataset.encode(ds.users[:10], ds.items[:10])
        np.testing.assert_array_equal(idx_a, idx_b)
        np.testing.assert_array_equal(val_a, val_b)

    def test_interactions_survive_for_seen_masking(self, ds, tmp_path):
        model = build_model("MF", ds, k=8, seed=0)
        path = save_artifact(model, ds, str(tmp_path / "b"), "MF")
        loaded = load_artifact(path)
        np.testing.assert_array_equal(loaded.dataset.users, ds.users)
        np.testing.assert_array_equal(loaded.dataset.items, ds.items)
        assert loaded.dataset.positives_by_user() == ds.positives_by_user()


class TestValidation:
    def test_path_normalization(self, ds, tmp_path):
        model = build_model("MF", ds, k=8, seed=0)
        path = save_artifact(model, ds, str(tmp_path / "noext"), "MF")
        assert path.endswith("noext.npz")
        # Loading by the extensionless name the caller used also works.
        assert load_artifact(str(tmp_path / "noext")).model_name == "MF"

    def test_unknown_model_name_rejected_at_save(self, ds, tmp_path):
        model = build_model("MF", ds, k=8, seed=0)
        with pytest.raises(KeyError):
            save_artifact(model, ds, str(tmp_path / "b"), "NotAModel")

    def test_bare_npz_rejected_with_hint(self, ds, tmp_path):
        from repro.training.persistence import save_model

        model = build_model("MF", ds, k=8, seed=0)
        path = save_model(model, str(tmp_path / "bare"))
        with pytest.raises(ValueError, match="not a repro artifact"):
            load_artifact(path)

    def test_hyperparams_recorded(self, ds, tmp_path):
        model = build_model("GML-FMmd", ds, k=8, seed=3)
        path = save_artifact(model, ds, str(tmp_path / "b"), "GML-FMmd",
                             {"k": 8, "seed": 3})
        loaded = load_artifact(path)
        assert loaded.hyperparams == {"k": 8, "seed": 3}
        assert loaded.meta["version"] >= 1

    def test_unrebuildable_bundle_fails_at_save(self, ds, tmp_path):
        model = build_model("GML-FMdnn", ds, k=8, seed=0)
        # Unknown hyperparameter keys surface immediately, not at load.
        with pytest.raises(TypeError):
            save_artifact(model, ds, str(tmp_path / "b"), "GML-FMdnn",
                          {"n_layers": 1})
        # A recipe that rebuilds the wrong shapes is rejected too.
        with pytest.raises(ValueError, match="does not rebuild"):
            save_artifact(model, ds, str(tmp_path / "b"), "GML-FMdnn", {"k": 4})
        # And a recipe naming the wrong architecture entirely.
        with pytest.raises(ValueError, match="does not rebuild"):
            save_artifact(model, ds, str(tmp_path / "b"), "LibFM", {"k": 8})

    def test_graph_model_round_trips_its_training_split(self, ds, tmp_path):
        # NGCF's scores depend on the propagation graph, not just the
        # parameters; the artifact must carry the training split the
        # graph was built from.
        half = ds.n_interactions // 2
        model = build_model("NGCF", ds, k=8, seed=0,
                            train_users=ds.users[:half],
                            train_items=ds.items[:half])
        path = save_artifact(
            model, ds, str(tmp_path / "b"), "NGCF", {"k": 8},
            train_interactions=(ds.users[:half], ds.items[:half]))
        loaded = load_artifact(path)
        users, items = ds.users[:30], ds.items[:30]
        np.testing.assert_allclose(loaded.model.predict(users, items),
                                   model.predict(users, items),
                                   rtol=1e-12, atol=1e-12)
