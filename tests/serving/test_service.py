"""RecommendationService: micro-batching, caching, invalidation, stats."""

import numpy as np
import pytest

from repro.experiments.registry import build_model
from repro.serving.artifact import save_artifact
from repro.serving.service import RecommendationService
from tests.helpers import make_tiny_dataset

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(n_users=15, n_items=25)


@pytest.fixture
def service(ds):
    model = build_model("GML-FMmd", ds, k=8, seed=0)
    svc = RecommendationService(model, ds, top_k=5, cache_size=64)
    svc.model_name = "GML-FMmd"
    return svc


class TestQueries:
    def test_single_user_shape(self, service, ds):
        rec = service.recommend(0)
        assert rec.user == 0
        assert rec.items.shape == (5,) and rec.scores.shape == (5,)
        assert len(set(rec.items.tolist())) == 5
        assert np.all(np.diff(rec.scores) <= 1e-12)
        assert not set(rec.items.tolist()) & ds.positives_by_user()[0]

    def test_matches_recommend_function(self, service, ds):
        from repro.training.recommend import recommend

        users = np.arange(6)
        recs = service.recommend_batch(users, k=5)
        expected = recommend(service.model, ds, users, top_k=5)
        np.testing.assert_array_equal(np.stack([r.items for r in recs]), expected)

    def test_batch_scores_each_user_once(self, service):
        recs = service.recommend_batch([0, 1, 2, 1, 0])
        assert [r.user for r in recs] == [0, 1, 2, 1, 0]
        assert service.users_scored == 3
        np.testing.assert_array_equal(recs[0].items, recs[4].items)

    def test_include_seen_option(self, service, ds):
        rec = service.recommend(0, k=ds.n_items, exclude_seen=False)
        assert set(rec.items.tolist()) == set(range(ds.n_items))

    def test_to_dict_is_json_friendly(self, service):
        import json

        payload = service.recommend(3).to_dict()
        parsed = json.loads(json.dumps(payload))
        assert parsed["user"] == 3 and len(parsed["items"]) == 5


class TestCaching:
    def test_repeat_query_hits_cache(self, service):
        first = service.recommend(2)
        assert service.cache.stats()["hits"] == 0
        second = service.recommend(2)
        assert service.cache.stats()["hits"] == 1
        assert service.users_scored == 1
        np.testing.assert_array_equal(first.items, second.items)

    def test_different_k_is_distinct_entry(self, service):
        service.recommend(2, k=3)
        service.recommend(2, k=4)
        assert service.users_scored == 2

    def test_interaction_update_invalidates_user(self, service):
        rec = service.recommend(4)
        top = int(rec.items[0])
        assert service.add_interaction(4, top) is True
        refreshed = service.recommend(4)
        assert top not in refreshed.items.tolist()
        assert service.users_scored == 2            # user 4 re-scored
        assert service.interactions_added == 1

    def test_known_interaction_is_noop(self, service, ds):
        seen = next(iter(ds.positives_by_user()[5]))
        service.recommend(5)
        assert service.add_interaction(5, seen) is False
        service.recommend(5)
        assert service.users_scored == 1            # cache survived


class TestValidationAndStats:
    def test_user_range(self, service, ds):
        with pytest.raises(ValueError):
            service.recommend(ds.n_users)
        with pytest.raises(ValueError):
            service.recommend(-1)

    def test_k_range_is_per_queried_user(self, service, ds):
        seen_0 = service.index.seen_count(0)
        with pytest.raises(ValueError, match="unseen items for user 0"):
            service.recommend(0, k=ds.n_items - seen_0 + 1)
        # The same k is fine when not filtering seen items.
        service.recommend(0, k=ds.n_items - seen_0 + 1, exclude_seen=False)
        with pytest.raises(ValueError):
            service.recommend(0, k=ds.n_items + 1, exclude_seen=False)
        with pytest.raises(ValueError):
            service.recommend(0, k=0)

    def test_heavy_user_does_not_break_other_users(self, ds):
        # One user interacting with almost the whole catalogue must not
        # make every other user's request infeasible.
        model = build_model("MF", ds, k=8, seed=0)
        svc = RecommendationService(model, ds, top_k=5)
        for item in range(ds.n_items - 2):
            svc.add_interaction(0, item)
        rec = svc.recommend(1)                      # light user still fine
        assert rec.items.shape == (5,)
        with pytest.raises(ValueError, match="for user 0"):
            svc.recommend(0, k=5)                   # only 2 unseen left

    def test_stats_shape(self, service, ds):
        service.recommend_batch([0, 1])
        stats = service.stats()
        assert stats["model"] == "GML-FMmd"
        assert stats["dataset"] == ds.name
        assert stats["requests"] == 2
        assert stats["fast_path"] is True
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0


class TestConcurrencyAndSharing:
    def test_concurrent_queries_and_updates(self, ds):
        # The HTTP layer is threaded; hammer the service from several
        # threads mixing reads and interaction updates.
        from concurrent.futures import ThreadPoolExecutor

        model = build_model("BPR-MF", ds, k=8, seed=0)
        svc = RecommendationService(model, ds, top_k=3, cache_size=8)

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(40):
                user = int(rng.integers(0, ds.n_users))
                rec = svc.recommend(user)
                if rng.random() < 0.3:
                    svc.add_interaction(user, int(rec.items[0]))
            return True

        with ThreadPoolExecutor(max_workers=8) as pool:
            assert all(pool.map(worker, range(8)))
        stats = svc.stats()
        assert stats["requests"] == 8 * 40

    def test_service_updates_do_not_leak_into_shared_index(self, ds):
        from repro.serving.index import TopKIndex
        from repro.training.recommend import recommend

        model = build_model("MF", ds, k=8, seed=0)
        svc = RecommendationService(model, ds, top_k=3)
        before = recommend(model, ds, np.array([0]), top_k=3)
        svc.add_interaction(0, int(before[0, 0]))
        # recommend() uses the shared read-only index: unaffected.
        np.testing.assert_array_equal(
            recommend(model, ds, np.array([0]), top_k=3), before)
        assert TopKIndex.for_dataset(ds) is TopKIndex.for_dataset(ds)

    def test_large_batch_is_chunked(self, ds):
        model = build_model("MF", ds, k=8, seed=0)
        svc = RecommendationService(model, ds, top_k=3, user_batch=4,
                                    cache_size=0)
        users = np.arange(ds.n_users)
        recs = svc.recommend_batch(users)
        assert [r.user for r in recs] == users.tolist()
        assert svc.users_scored == ds.n_users


class TestFromArtifact:
    def test_boot_from_bundle(self, ds, tmp_path):
        model = build_model("BPR-MF", ds, k=8, seed=0)
        path = save_artifact(model, ds, str(tmp_path / "b"), "BPR-MF", {"k": 8})
        service = RecommendationService.from_artifact(path, top_k=4)
        rec = service.recommend(1)
        assert rec.items.shape == (4,)
        assert service.stats()["model"] == "BPR-MF"
        expected = model.predict(np.full(4, 1), rec.items)
        np.testing.assert_allclose(rec.scores, expected, rtol=1e-9)
