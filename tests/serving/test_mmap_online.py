"""Online fold-in over memory-mapped (read-only) artifacts — S3.

``--artifact b --mmap --online`` is a contradiction the stack must
resolve loudly or deliberately: by default the trainer refuses at
construction (:class:`ReadOnlyModelError` naming both remedies), and
with ``OnlineConfig(on_readonly="copy")`` the first fold-in privatizes
exactly the touched tables (copy-on-first-write) while everything the
trainer never writes stays a shared read-only mapping."""

import json

import pytest

from repro.experiments.registry import build_model
from repro.serving.artifact import save_artifact
from repro.serving.service import RecommendationService
from repro.training.online import (IncrementalTrainer, OnlineConfig,
                                   ReadOnlyModelError)
from tests.helpers import make_tiny_dataset

pytestmark = [pytest.mark.serving, pytest.mark.streaming]


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    ds = make_tiny_dataset(seed=0, n_users=12, n_items=15)
    model = build_model("MF", ds, k=4, seed=0)
    path = tmp_path_factory.mktemp("artifact") / "bundle"
    return save_artifact(model, ds, str(path), "MF", {"k": 4}, layout="dir")


class TestErrorMode:
    def test_online_on_mmap_artifact_refuses_at_boot(self, bundle):
        with pytest.raises(ReadOnlyModelError) as excinfo:
            RecommendationService.from_artifact(
                bundle, mmap=True, top_k=5, cache_size=0,
                online_config=OnlineConfig(seed=0))
        # The error must name both ways out.
        message = str(excinfo.value)
        assert "mmap=False" in message
        assert "on_readonly='copy'" in message

    def test_error_is_a_runtime_error_not_a_value_error(self):
        # ValueError would map to HTTP 400 (client fault); a read-only
        # model is a deployment fault and must surface as 500.
        assert issubclass(ReadOnlyModelError, RuntimeError)
        assert not issubclass(ReadOnlyModelError, ValueError)

    def test_mmap_without_online_serves_fine(self, bundle):
        service = RecommendationService.from_artifact(
            bundle, mmap=True, top_k=5, cache_size=0)
        rec = service.recommend(3)
        assert len(rec.items) == 5


class TestCopyOnFirstWrite:
    def test_fold_in_privatizes_only_touched_tables(self, bundle):
        service = RecommendationService.from_artifact(
            bundle, mmap=True, top_k=5, cache_size=0,
            online_config=OnlineConfig(seed=0, on_readonly="copy"))
        params = dict(service.model.named_parameters())
        assert all(not p.data.flags.writeable for p in params.values())

        report = service.update_interactions([1], [2])
        assert report["folded_in"] is True
        assert "loss" in report

        touched = {name for name, p in params.items()
                   if p.data.flags.writeable}
        untouched = set(params) - touched
        # The fold-in targets were copied into private writable arrays;
        # everything else still aliases the read-only mapping.
        assert touched, "fold-in wrote nothing"
        assert untouched, "fold-in privatized tables it never writes"

    def test_updates_shift_recommendations(self, bundle):
        service = RecommendationService.from_artifact(
            bundle, mmap=True, top_k=5, cache_size=0,
            online_config=OnlineConfig(seed=0, on_readonly="copy"))
        before = service.recommend(4).items
        target = before[0]
        for _ in range(3):
            service.update_interactions([4], [target])
        after = service.recommend(4).items
        # Seen-masking alone guarantees the consumed item drops out.
        assert target not in after

    def test_matches_unmapped_fold_in(self, bundle):
        """Copy-on-first-write must not change the math: the same event
        stream over a private (mmap=False) load lands on the same
        parameters."""
        import numpy as np

        services = [
            RecommendationService.from_artifact(
                bundle, mmap=mmap, top_k=5, cache_size=0,
                online_config=OnlineConfig(seed=0, on_readonly="copy"))
            for mmap in (True, False)
        ]
        for service in services:
            service.update_interactions([1, 2], [3, 4])
            service.update_interactions([1], [5])
        mapped, private = services
        for (name, a), (_, b) in zip(
                sorted(mapped.model.named_parameters()),
                sorted(private.model.named_parameters())):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-12,
                                       atol=1e-12, err_msg=name)


class TestOverHttp:
    def test_update_endpoint_works_on_mmap_service(self, bundle):
        import threading

        from repro.serving.server import build_server

        service = RecommendationService.from_artifact(
            bundle, mmap=True, top_k=5, cache_size=0,
            online_config=OnlineConfig(seed=0, on_readonly="copy"))
        server = build_server(service, frontend="async")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            import urllib.request

            request = urllib.request.Request(
                server.url + "/update",
                data=json.dumps({"user": 2, "item": 3}).encode(),
                method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=10) as resp:
                report = json.loads(resp.read())
            assert resp.status == 200
            assert report["folded_in"] is True
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestTrainerDirect:
    def test_trainer_refuses_readonly_targets(self, bundle):
        from repro.serving.artifact import load_artifact

        loaded = load_artifact(bundle, mmap=True)
        with pytest.raises(ReadOnlyModelError):
            IncrementalTrainer(loaded.model, loaded.dataset,
                               OnlineConfig(seed=0))

    def test_writable_model_unaffected_by_the_check(self, bundle):
        from repro.serving.artifact import load_artifact

        loaded = load_artifact(bundle, mmap=False)
        trainer = IncrementalTrainer(loaded.model, loaded.dataset,
                                     OnlineConfig(seed=0))
        import numpy as np

        report = trainer.update(np.array([1]), np.array([2]))
        assert report.events == 1
