"""BatchScorer equivalence against per-pair ``model.predict``."""

import numpy as np
import pytest

from repro.experiments.registry import build_model
from repro.core.gml_fm import GMLFM
from repro.serving.scorer import BatchScorer
from repro.training.recommend import recommend
from tests.helpers import make_tiny_dataset

pytestmark = pytest.mark.serving

#: Models with an item-side precompute fast path.
FAST_PATH_MODELS = ["MF", "PMF", "BPR-MF", "NGCF", "LibFM", "GML-FMmd", "GML-FMdnn"]
#: Models served through the exact chunked-predict fallback.
FALLBACK_MODELS = ["NCF", "NFM", "DeepFM"]


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(n_users=16, n_items=28)


def reference_grid(model, dataset, users):
    grid_u = np.repeat(users, dataset.n_items)
    grid_i = np.tile(np.arange(dataset.n_items, dtype=np.int64), users.size)
    return model.predict(grid_u, grid_i).reshape(users.size, dataset.n_items)


def legacy_recommend(model, dataset, users, top_k, exclude_seen=True):
    """The seed-era per-user loop, kept verbatim as the oracle."""
    users = np.asarray(users, dtype=np.int64)
    n_items = dataset.n_items
    seen = dataset.positives_by_user() if exclude_seen else None
    all_items = np.arange(n_items, dtype=np.int64)
    out = np.empty((users.size, top_k), dtype=np.int64)
    for row, user in enumerate(users):
        scores = model.predict(np.full(n_items, user, dtype=np.int64), all_items)
        if exclude_seen and seen[user]:
            scores[list(seen[user])] = -np.inf
        top = np.argpartition(-scores, top_k - 1)[:top_k]
        out[row] = top[np.argsort(-scores[top])]
    return out


class TestEquivalence:
    @pytest.mark.parametrize("name", FAST_PATH_MODELS)
    def test_fast_path_matches_predict(self, name, ds):
        model = build_model(name, ds, k=8, seed=0,
                            train_users=ds.users, train_items=ds.items)
        scorer = BatchScorer(model, ds)
        assert scorer.uses_fast_path, f"{name} lost its grid fast path"
        users = np.arange(ds.n_users, dtype=np.int64)
        np.testing.assert_allclose(scorer.score(users),
                                   reference_grid(model, ds, users),
                                   rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("name", ["MF", "PMF", "BPR-MF", "NGCF"])
    def test_entity_fast_path_tight_tolerance(self, name, ds):
        # Entity models go through one BLAS matmul; only the dot-product
        # summation order differs from ``predict``.
        model = build_model(name, ds, k=8, seed=0,
                            train_users=ds.users, train_items=ds.items)
        users = np.arange(ds.n_users, dtype=np.int64)
        np.testing.assert_allclose(BatchScorer(model, ds).score(users),
                                   reference_grid(model, ds, users),
                                   rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("name", FALLBACK_MODELS)
    def test_fallback_is_bit_exact(self, name, ds):
        model = build_model(name, ds, k=8, seed=0)
        scorer = BatchScorer(model, ds)
        assert not scorer.uses_fast_path
        users = np.arange(ds.n_users, dtype=np.int64)
        np.testing.assert_array_equal(scorer.score(users),
                                      reference_grid(model, ds, users))

    def test_exact_mode_forces_fallback(self, ds):
        model = build_model("MF", ds, k=8, seed=0)
        scorer = BatchScorer(model, ds, mode="exact")
        assert not scorer.uses_fast_path
        users = np.arange(5, dtype=np.int64)
        np.testing.assert_array_equal(scorer.score(users),
                                      reference_grid(model, ds, users))

    def test_gmlfm_unweighted_decomposition(self, ds):
        model = GMLFM(ds, k=8, use_weight=False, rng=np.random.default_rng(0))
        scorer = BatchScorer(model, ds)
        assert scorer.uses_fast_path
        users = np.arange(ds.n_users, dtype=np.int64)
        np.testing.assert_allclose(scorer.score(users),
                                   reference_grid(model, ds, users),
                                   rtol=1e-9, atol=1e-9)

    def test_gmlfm_non_euclidean_falls_back(self, ds):
        model = GMLFM(ds, k=8, distance="manhattan", mode="naive",
                      rng=np.random.default_rng(0))
        scorer = BatchScorer(model, ds)
        assert not scorer.uses_fast_path
        users = np.arange(4, dtype=np.int64)
        np.testing.assert_array_equal(scorer.score(users),
                                      reference_grid(model, ds, users))


class TestRecommendDelegation:
    """The public ``recommend`` stays equivalent to the seed-era loop."""

    @pytest.mark.parametrize("name", FAST_PATH_MODELS + FALLBACK_MODELS)
    @pytest.mark.parametrize("exclude_seen", [True, False])
    def test_topk_lists_identical_to_legacy(self, name, exclude_seen, ds):
        model = build_model(name, ds, k=8, seed=0,
                            train_users=ds.users, train_items=ds.items)
        users = np.arange(ds.n_users, dtype=np.int64)
        np.testing.assert_array_equal(
            recommend(model, ds, users, top_k=6, exclude_seen=exclude_seen),
            legacy_recommend(model, ds, users, top_k=6, exclude_seen=exclude_seen),
        )

    def test_scorer_reuse_across_calls(self, ds):
        model = build_model("GML-FMmd", ds, k=8, seed=0)
        scorer = BatchScorer(model, ds)
        first = recommend(model, ds, np.arange(4), top_k=5, scorer=scorer)
        second = recommend(model, ds, np.arange(4), top_k=5, scorer=scorer)
        np.testing.assert_array_equal(first, second)


class TestValidation:
    def test_user_out_of_range(self, ds):
        model = build_model("MF", ds, k=8, seed=0)
        with pytest.raises(ValueError):
            BatchScorer(model, ds).score(np.array([ds.n_users]))

    def test_bad_mode(self, ds):
        model = build_model("MF", ds, k=8, seed=0)
        with pytest.raises(ValueError):
            BatchScorer(model, ds, mode="turbo")

    def test_refresh_picks_up_new_parameters(self, ds):
        model = build_model("MF", ds, k=8, seed=0)
        scorer = BatchScorer(model, ds)
        before = scorer.score(np.array([0]))
        model.item_bias.weight.data[:] += 1.0
        scorer.refresh()
        after = scorer.score(np.array([0]))
        np.testing.assert_allclose(after, before + 1.0)
