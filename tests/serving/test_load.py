"""Seeded load harness against a live sharded HTTP server.

N concurrent client threads drive a reproducible Zipf-skewed request
mix (:mod:`tests.serving.loadgen`) at a real
``ThreadingHTTPServer`` + :class:`~repro.serving.cluster.ServingCluster`
stack and assert the three things a load test can prove:

- **zero errors** under concurrency (every scheduled request answered
  200 with a well-formed body);
- **response equivalence** — each body is byte-identical to what the
  single-process service returns for that user;
- **latency sanity** — p50/p99 are finite and measured (printed here;
  the JSON benchmark record with the throughput gate lives in
  ``benchmarks/test_cluster_throughput.py``).

Sized for the fast tier: a small corpus, a few hundred requests,
thread/shard counts that do not assume a many-core box.
"""

import json
import threading

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.serving import RecommendationService, ServingCluster, build_server
from tests.serving.loadgen import drive, zipf_users

pytestmark = [pytest.mark.serving, pytest.mark.cluster]

N_REQUESTS = 240
N_CLIENTS = 8
TOP_K = 5


@pytest.fixture(scope="module")
def corpus():
    return make_dataset("amazon-auto", seed=0, scale=0.3)


@pytest.fixture(scope="module")
def model(corpus):
    return build_model("BPR-MF", corpus, k=8, seed=0)


@pytest.fixture(scope="module")
def reference_bodies(model, corpus):
    """What the single-process service answers for every user."""
    service = RecommendationService(model, corpus, top_k=TOP_K)
    return {user: json.dumps(service.recommend(user).to_dict())
            for user in range(corpus.n_users)}


def serve_cluster(model, corpus, n_shards, replicas=1):
    cluster = ServingCluster(
        lambda: RecommendationService(model, corpus, top_k=TOP_K),
        n_shards=n_shards, replicas=replicas)
    server = build_server(cluster)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return cluster, server


class TestZipfSchedule:
    def test_schedule_is_seeded_and_skewed(self, corpus):
        first = zipf_users(corpus.n_users, 1000, seed=3)
        np.testing.assert_array_equal(first,
                                      zipf_users(corpus.n_users, 1000, seed=3))
        assert not np.array_equal(first, zipf_users(corpus.n_users, 1000,
                                                    seed=4))
        assert first.min() >= 0 and first.max() < corpus.n_users
        # Skew: the busiest user dominates a uniform mix's expectation.
        top_share = np.bincount(first).max() / first.size
        assert top_share > 5.0 / corpus.n_users

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            zipf_users(0, 10)
        with pytest.raises(ValueError):
            zipf_users(10, 0)


class TestShardedLoad:
    def test_concurrent_load_zero_errors_and_equivalence(
            self, model, corpus, reference_bodies):
        schedule = zipf_users(corpus.n_users, N_REQUESTS, seed=0)
        cluster, server = serve_cluster(model, corpus, n_shards=2)
        try:
            result = drive(server.url, schedule, n_threads=N_CLIENTS,
                           k=TOP_K)
        finally:
            server.shutdown()
            server.server_close()
            cluster.close()
        assert result.errors == []
        assert result.n_requests == N_REQUESTS
        for position, body in enumerate(result.responses):
            user = int(schedule[position])
            assert body["user"] == user
            assert json.dumps(body) == reference_bodies[user]
        summary = result.summary()
        assert 0 < summary["p50_ms"] <= summary["p99_ms"]
        assert summary["req_per_sec"] > 0
        print(f"\nsharded load: {summary['requests']} requests, "
              f"{summary['req_per_sec']:.0f} req/s, "
              f"p50={summary['p50_ms']:.1f}ms p99={summary['p99_ms']:.1f}ms")

    def test_load_survives_replica_kill(self, model, corpus,
                                        reference_bodies):
        """Failover under concurrent fire: no errors, same bytes."""
        schedule = zipf_users(corpus.n_users, N_REQUESTS // 2, seed=1)
        cluster, server = serve_cluster(model, corpus, n_shards=2,
                                        replicas=2)
        try:
            killer = threading.Timer(0.05, cluster.kill_replica, args=(0, 0))
            killer.start()
            result = drive(server.url, schedule, n_threads=N_CLIENTS,
                           k=TOP_K)
            killer.join()
        finally:
            server.shutdown()
            server.server_close()
            cluster.close()
        assert result.errors == []
        for position, body in enumerate(result.responses):
            assert json.dumps(body) == \
                reference_bodies[int(schedule[position])]
