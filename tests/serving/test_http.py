"""End-to-end HTTP smoke tests against a live ``repro serve`` process."""

import json
import os
import re
import select
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

pytestmark = pytest.mark.serving

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


@pytest.fixture(scope="module")
def live_server():
    """A real ``python -m repro serve`` subprocess on an ephemeral port."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--dataset", "amazon-auto",
         "--model", "BPR-MF", "--scale", "quick", "--port", "0", "--k", "8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_env(), cwd=REPO_ROOT,
    )
    try:
        deadline = time.monotonic() + 60
        banner = ""
        while time.monotonic() < deadline:
            # select keeps the deadline effective: a wedged server that
            # never prints must fail the fixture, not hang the run.
            ready, _, _ = select.select([proc.stdout], [], [],
                                        max(0.0, deadline - time.monotonic()))
            if not ready:
                break
            banner = proc.stdout.readline()
            if "http://" in banner or proc.poll() is not None:
                break
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        if not match:
            raise RuntimeError(f"server never announced a port: {banner!r}")
        yield f"http://127.0.0.1:{match.group(1)}"
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


class TestLiveEndpoints:
    def test_healthz(self, live_server):
        status, payload = _get(live_server + "/healthz")
        assert status == 200 and payload == {"status": "ok"}

    def test_recommend(self, live_server):
        status, payload = _get(live_server + "/recommend?user=0&k=5")
        assert status == 200
        assert payload["user"] == 0
        assert len(payload["items"]) == 5
        assert len(set(payload["items"])) == 5
        scores = payload["scores"]
        assert scores == sorted(scores, reverse=True)

    def test_stats_reflects_traffic(self, live_server):
        _get(live_server + "/recommend?user=1&k=5")
        _get(live_server + "/recommend?user=1&k=5")
        status, stats = _get(live_server + "/stats")
        assert status == 200
        assert stats["requests"] >= 2
        assert stats["cache"]["hits"] >= 1
        assert stats["model"] == "BPR-MF"

    def test_exclude_seen_flag_is_case_insensitive(self, live_server):
        _, lower = _get(live_server + "/recommend?user=2&k=5&exclude_seen=false")
        _, upper = _get(live_server + "/recommend?user=2&k=5&exclude_seen=False")
        assert upper["items"] == lower["items"]

    def test_bad_requests(self, live_server):
        for path, expected in [
            ("/recommend", 400),                   # missing user
            ("/recommend?user=abc", 400),          # non-integer
            ("/recommend?user=999999&k=5", 400),   # out of range
            ("/recommend?user=0&k=0", 400),        # bad k
            ("/nope", 404),
        ]:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(live_server + path)
            assert excinfo.value.code == expected
            body = json.loads(excinfo.value.read())
            assert "error" in body


@pytest.mark.cluster
class TestLiveShardedServer:
    """`repro serve --shards/--replicas/--ann` end to end."""

    @pytest.fixture(scope="class")
    def sharded_server(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--dataset",
             "amazon-auto", "--model", "BPR-MF", "--scale", "quick",
             "--port", "0", "--k", "8", "--shards", "2", "--replicas", "2",
             "--ann"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=_env(), cwd=REPO_ROOT,
        )
        try:
            deadline = time.monotonic() + 120
            banner = ""
            while time.monotonic() < deadline:
                ready, _, _ = select.select([proc.stdout], [], [],
                                            max(0.0, deadline - time.monotonic()))
                if not ready:
                    break
                banner = proc.stdout.readline()
                if "http://" in banner or proc.poll() is not None:
                    break
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            if not match:
                raise RuntimeError(f"sharded server never announced a port: "
                                   f"{banner!r}")
            yield f"http://127.0.0.1:{match.group(1)}"
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def test_recommend_and_cluster_stats(self, sharded_server):
        status, payload = _get(sharded_server + "/recommend?user=5&k=5")
        assert status == 200
        assert len(set(payload["items"])) == 5
        status, stats = _get(sharded_server + "/stats")
        assert status == 200
        assert stats["cluster"]["shards"] == 2
        assert stats["cluster"]["replicas"] == 2
        assert stats["cluster"]["alive"] == [2, 2]
        assert stats["ann"] is True

    def test_update_routes_through_the_cluster(self, sharded_server):
        _, before = _get(sharded_server + "/recommend?user=5&k=5")
        target = before["items"][0]
        body = json.dumps({"user": 5, "item": target}).encode()
        request = urllib.request.Request(
            sharded_server + "/update", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=15) as resp:
            report = json.loads(resp.read())
        assert report["novel"] == 1
        _, after = _get(sharded_server + "/recommend?user=5&k=5")
        assert target not in after["items"]

    def test_bad_requests_map_to_400_across_shards(self, sharded_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(sharded_server + "/recommend?user=999999&k=5")
        assert excinfo.value.code == 400


class TestSelfcheck:
    def test_cli_selfcheck_exits_zero(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--selfcheck"],
            capture_output=True, text=True, timeout=120,
            env=_env(), cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "selfcheck ok" in result.stdout
