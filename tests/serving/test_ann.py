"""Properties of the IVF candidate index and the top-k retrieval oracle.

Three layers of contract:

- **IVF recall** (hypothesis, derandomized): on random item-state
  matrices — isotropic Gaussian, the *worst* case for any clustering
  index — candidate recall@k against exact top-k stays ≥ 0.95 at the
  default probe count, and ``probes = n_clusters`` degrades to exact
  retrieval (candidate set = whole catalogue).
- **Scorer integration**: every grid-fast-path registry model scores
  listed candidates identically to its full grid, the whitened index
  is deterministic across rebuilds, and models without the bilinear
  decomposition fall back to the exact path.
- **TopKIndex set oracles** (hypothesis): ``mask_seen``/``topk``/
  ``pair_seen`` against brute-force Python sets and ``np.argsort`` —
  the ranking properties PR 4's membership suite never covered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.serving.ann import ANNConfig, IVFIndex, kmeans, whitening_scale
from repro.serving.index import TopKIndex
from repro.serving.scorer import BatchScorer
from repro.serving.service import RecommendationService

pytestmark = [pytest.mark.serving, pytest.mark.cluster]

TOP_K = 10


def exact_topk(scores: np.ndarray, k: int) -> np.ndarray:
    return np.argsort(-scores, axis=1, kind="stable")[:, :k]


def candidate_recall(index: IVFIndex, queries: np.ndarray,
                     vectors: np.ndarray, k: int,
                     probes=None) -> float:
    """Fraction of exact top-k items present in the candidate sets."""
    exact = exact_topk(queries @ vectors.T, k)
    cand = index.candidates(queries, probes=probes)
    hits = 0
    for row in range(queries.shape[0]):
        hits += np.isin(exact[row], cand[row]).sum()
    return hits / exact.size


@st.composite
def random_states(draw):
    """Isotropic random item vectors + queries (the worst case)."""
    n_items = draw(st.integers(150, 400))
    dim = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n_items, dim))
    queries = rng.normal(size=(24, dim))
    return vectors, queries


class TestIVFRecallProperties:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(random_states())
    def test_recall_at_default_probes(self, state):
        vectors, queries = state
        index = IVFIndex(vectors, ANNConfig(seed=0))
        recall = candidate_recall(index, queries, vectors, TOP_K)
        assert recall >= 0.95, (
            f"recall@{TOP_K}={recall:.3f} below 0.95 at default probes "
            f"(c={index.n_clusters}, p={index.default_probes})")

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(random_states())
    def test_probe_all_clusters_degrades_to_exact(self, state):
        vectors, queries = state
        index = IVFIndex(vectors, ANNConfig(seed=0))
        cand = index.candidates(queries, probes=index.n_clusters)
        # Every query's candidate set is the whole catalogue …
        for row in range(queries.shape[0]):
            row_items = cand[row][cand[row] >= 0]
            assert sorted(row_items.tolist()) == list(range(len(vectors)))
        # … so recall is exactly 1.
        recall = candidate_recall(index, queries, vectors, TOP_K,
                                  probes=index.n_clusters)
        assert recall == 1.0

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(random_states())
    def test_more_probes_never_shrink_candidate_sets(self, state):
        vectors, queries = state
        index = IVFIndex(vectors, ANNConfig(seed=0))
        few = index.candidates(queries[:4], probes=1)
        many = index.candidates(queries[:4], probes=index.n_clusters)
        for row in range(4):
            few_set = set(few[row][few[row] >= 0].tolist())
            many_set = set(many[row][many[row] >= 0].tolist())
            assert few_set <= many_set


class TestKMeansAndIndex:
    def test_kmeans_is_deterministic_and_partitions(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(120, 5))
        c1, a1 = kmeans(vectors, 9, seed=42)
        c2, a2 = kmeans(vectors, 9, seed=42)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(c1, c2)
        assert a1.min() >= 0 and a1.max() < 9
        # a different seed is allowed to differ (and here, does)
        _, a3 = kmeans(vectors, 9, seed=43)
        assert a3.shape == a1.shape

    def test_kmeans_input_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 3)), 2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((10, 3)), 11)
        with pytest.raises(ValueError):
            kmeans(np.zeros((10, 3)), 0)

    def test_index_lists_cover_every_item_once(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(200, 4))
        index = IVFIndex(vectors, ANNConfig(seed=1))
        assert index.cluster_sizes().sum() == 200
        everything = index.candidates(rng.normal(size=(1, 4)),
                                      probes=index.n_clusters)
        assert sorted(everything[0][everything[0] >= 0].tolist()) == \
            list(range(200))

    def test_degenerate_tiny_catalogues(self):
        # 1- and 2-item matrices must index and retrieve, not crash on
        # a cluster count above the vector count.
        for n in (1, 2, 3):
            vectors = np.arange(n * 2, dtype=np.float64).reshape(n, 2)
            index = IVFIndex(vectors, ANNConfig(seed=0))
            assert 1 <= index.n_clusters <= n
            cand = index.candidates(np.ones((1, 2)),
                                    probes=index.n_clusters)
            assert sorted(cand[0][cand[0] >= 0].tolist()) == list(range(n))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ANNConfig(n_clusters=0)
        with pytest.raises(ValueError):
            ANNConfig(probes=0)
        index = IVFIndex(np.random.default_rng(0).normal(size=(50, 3)),
                         ANNConfig(seed=0))
        with pytest.raises(ValueError):
            index.candidates(np.zeros((1, 3)), probes=0)
        with pytest.raises(ValueError):
            index.candidates(np.zeros((1, 7)))  # dim mismatch

    def test_whitening_scale_preserves_inner_products(self):
        rng = np.random.default_rng(5)
        queries = rng.normal(size=(64, 6)) * np.array([10, 1, .1, 1, 5, 0])
        vectors = rng.normal(size=(30, 6))
        scale = whitening_scale(queries)
        assert (scale > 0).all()
        np.testing.assert_allclose((queries / scale) @ (vectors * scale).T,
                                   queries @ vectors.T)


@pytest.fixture(scope="module")
def corpus():
    return make_dataset("movielens", seed=0, scale=0.5)


class TestScorerANN:
    FAST_PATH_MODELS = ["MF", "PMF", "BPR-MF", "NGCF", "LibFM", "GML-FMmd"]

    @pytest.mark.parametrize("name", FAST_PATH_MODELS)
    def test_listed_scores_match_the_grid(self, corpus, name):
        model = build_model(name, corpus, k=8, seed=0,
                            train_users=corpus.users,
                            train_items=corpus.items)
        scorer = BatchScorer(model, corpus, ann=ANNConfig(min_items=16))
        assert scorer.ann_active, name
        users = np.arange(12, dtype=np.int64)
        grid = scorer.score(users)
        listed = scorer.score_listed(
            users, np.tile(np.arange(corpus.n_items), (12, 1)))
        np.testing.assert_allclose(listed, grid, rtol=1e-9, atol=1e-12)

    def test_candidates_are_deterministic_across_rebuilds(self, corpus):
        model = build_model("BPR-MF", corpus, k=8, seed=0)
        users = np.arange(20, dtype=np.int64)
        first = BatchScorer(model, corpus, ann=ANNConfig(min_items=16))
        second = BatchScorer(model, corpus, ann=ANNConfig(min_items=16))
        np.testing.assert_array_equal(first.ann_candidates(users),
                                      second.ann_candidates(users))

    def test_min_items_gate_keeps_exact_path(self, corpus):
        model = build_model("MF", corpus, k=8, seed=0)
        scorer = BatchScorer(model, corpus,
                             ann=ANNConfig(min_items=corpus.n_items + 1))
        assert not scorer.ann_active
        with pytest.raises(RuntimeError):
            scorer.ann_candidates(np.arange(3))

    def test_model_without_decomposition_falls_back(self, corpus):
        model = build_model("NCF", corpus, k=8, seed=0)
        service = RecommendationService(model, corpus, top_k=5,
                                        ann=ANNConfig(min_items=16))
        assert not service.scorer.ann_active
        rec = service.recommend(0)
        assert len(rec.items) == 5

    def test_service_ann_recall_and_hygiene(self, corpus):
        """ANN lists: full length, no seen items, high overlap w/ exact."""
        model = build_model("BPR-MF", corpus, k=16, seed=0)
        exact = RecommendationService(model, corpus, top_k=TOP_K)
        approx = RecommendationService(model, corpus, top_k=TOP_K,
                                       ann=ANNConfig(min_items=16))
        assert approx.scorer.ann_active
        hits = total = 0
        for user in range(80):
            e = exact.recommend(user)
            a = approx.recommend(user)
            assert len(set(a.items.tolist())) == TOP_K
            assert np.all(np.diff(a.scores) <= 1e-12)      # sorted desc
            seen = set(approx.index.seen(user).tolist())
            assert not (set(a.items.tolist()) & seen)
            hits += len(set(e.items.tolist()) & set(a.items.tolist()))
            total += TOP_K
        assert hits / total >= 0.95

    def test_refresh_rebuilds_the_codebook(self, corpus):
        model = build_model("MF", corpus, k=8, seed=0)
        scorer = BatchScorer(model, corpus, ann=ANNConfig(min_items=16))
        before = scorer.ann_candidates(np.arange(8))
        # Move the item factors: the old inverted lists are stale.
        model.item_factors.weight.data += \
            np.random.default_rng(1).normal(size=model.item_factors.weight.data.shape)
        scorer.refresh()
        after = scorer.ann_candidates(np.arange(8))
        assert not np.array_equal(before, after)

    def test_update_interactions_keeps_ann_path_correct(self, corpus):
        model = build_model("MF", corpus, k=8, seed=0)
        service = RecommendationService(model, corpus, top_k=5,
                                        ann=ANNConfig(min_items=16))
        rec = service.recommend(3)
        newly_seen = [int(rec.items[0]), int(rec.items[1])]
        service.update_interactions([3, 3], newly_seen)
        updated = service.recommend(3)
        assert not (set(updated.items.tolist()) & set(newly_seen))


@st.composite
def score_matrices(draw):
    rows = draw(st.integers(1, 6))
    cols = draw(st.integers(2, 30))
    seed = draw(st.integers(0, 2**31 - 1))
    scores = np.random.default_rng(seed).normal(size=(rows, cols))
    return scores


class TestTopKIndexOracles:
    @settings(max_examples=50, deadline=None)
    @given(score_matrices(), st.data())
    def test_topk_matches_argsort_oracle(self, scores, data):
        k = data.draw(st.integers(1, scores.shape[1]))
        index = TopKIndex(scores.shape[0], scores.shape[1])
        got = index.topk(scores.copy(), k)
        oracle = np.argsort(-scores, axis=1, kind="stable")[:, :k]
        # Continuous random scores: ties have measure zero, order is
        # fully determined.
        np.testing.assert_array_equal(got, oracle)
        # Per-row: the selected scores are the k largest.
        for row in range(scores.shape[0]):
            top_scores = np.sort(scores[row, got[row]])[::-1]
            np.testing.assert_array_equal(
                top_scores, np.sort(scores[row])[::-1][:k])

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_mask_and_pair_seen_match_set_oracle(self, data):
        n_users = data.draw(st.integers(1, 6))
        n_items = data.draw(st.integers(1, 15))
        n_rows = data.draw(st.integers(0, 40))
        users = np.array(data.draw(st.lists(
            st.integers(0, n_users - 1), min_size=n_rows, max_size=n_rows)),
            dtype=np.int64)
        items = np.array(data.draw(st.lists(
            st.integers(0, n_items - 1), min_size=n_rows, max_size=n_rows)),
            dtype=np.int64)
        index = TopKIndex(n_users, n_items, users=users, items=items)
        # Overlay mutations participate in both masks.
        n_extra = data.draw(st.integers(0, 5))
        oracle = [set() for _ in range(n_users)]
        for user, item in zip(users.tolist(), items.tolist()):
            oracle[user].add(item)
        for _ in range(n_extra):
            user = data.draw(st.integers(0, n_users - 1))
            item = data.draw(st.integers(0, n_items - 1))
            assert index.add(user, item) == (item not in oracle[user])
            oracle[user].add(item)

        query = np.arange(n_users, dtype=np.int64)
        scores = np.zeros((n_users, n_items))
        index.mask_seen(scores, query)
        for user in range(n_users):
            masked = set(np.flatnonzero(np.isneginf(scores[user])).tolist())
            assert masked == oracle[user]

        listed = np.tile(np.arange(n_items), (n_users, 1))
        # A padding column must always read as unseen.
        listed_padded = np.hstack(
            [listed, np.full((n_users, 1), -1, dtype=np.int64)])
        seen = index.pair_seen(query, listed_padded)
        for user in range(n_users):
            assert set(np.flatnonzero(seen[user, :n_items]).tolist()) == \
                oracle[user]
            assert not seen[user, n_items]

    def test_pair_seen_validates_shape(self):
        index = TopKIndex(3, 5)
        with pytest.raises(ValueError):
            index.pair_seen(np.arange(3), np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError):
            index.pair_seen(np.arange(2), np.zeros((3, 4), dtype=np.int64))
