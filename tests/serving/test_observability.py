"""Observability integration: the instrumented serving plane.

Three contracts:

1. **Zero perturbation** — recommendations are byte-identical with
   tracing on vs off, for shard counts 1 and 2, including across a
   replica failover (trace ids come from object identity and the
   monotonic clock, never from the model's RNG streams).
2. **Backward compatibility** — the legacy ``/stats`` JSON counters are
   now views over the metrics registry and must agree with it exactly.
3. **Exposure** — ``/metrics`` (Prometheus text and JSON) and
   ``/trace`` answer over HTTP; cluster aggregation emits both merged
   totals and per-shard ``shard=`` labelled series; failovers surface
   in the structured log with the active trace id.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.obs.logs import JsonLogger
from repro.serving import RecommendationService, ServingCluster
from repro.serving.server import build_server

pytestmark = [pytest.mark.serving, pytest.mark.obs]


@pytest.fixture(scope="module")
def corpus():
    return make_dataset("amazon-auto", seed=0, scale=0.3)


@pytest.fixture(scope="module")
def model(corpus):
    return build_model("MF", corpus, k=8, seed=0)


@pytest.fixture(scope="module")
def request_stream(corpus):
    rng = np.random.default_rng(23)
    return rng.integers(0, corpus.n_users, size=32).tolist()


def make_factory(model, corpus, **kwargs):
    return lambda: RecommendationService(model, corpus, top_k=5, **kwargs)


def body(rec) -> str:
    return json.dumps(rec.to_dict())


def log_events(stream):
    return [json.loads(line) for line in
            stream.getvalue().splitlines() if line]


class TestTracingDoesNotPerturb:
    def test_single_service_byte_identical(self, model, corpus,
                                           request_stream):
        plain = RecommendationService(model, corpus, top_k=5)
        traced = RecommendationService(model, corpus, top_k=5, tracing=True)
        for user in request_stream:
            assert body(traced.recommend(user)) == body(plain.recommend(user))
        assert traced.traces(), "tracing was on but captured nothing"

    @pytest.mark.cluster
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_cluster_byte_identical_with_failover(self, model, corpus,
                                                  request_stream, n_shards):
        reference = RecommendationService(model, corpus, top_k=5)
        stream = io.StringIO()
        log = JsonLogger(stream=stream, min_level="info")
        with ServingCluster(make_factory(model, corpus, tracing=True),
                            n_shards=n_shards, replicas=2,
                            tracing=True, log=log) as cluster:
            for position, user in enumerate(request_stream):
                if position == len(request_stream) // 2:
                    cluster.kill_replica(0, 0)
                assert body(cluster.recommend(user)) == \
                    body(reference.recommend(user))
            assert cluster.failovers >= 1
            traces = cluster.traces()
        assert traces, "cluster tracing captured nothing"
        newest = traces[0]
        assert newest["name"] == "recommend_batch"
        # Replica-side spans were absorbed across the process boundary,
        # prefixed with their shard/replica coordinates.
        remote = [s for s in newest["spans"] if ":" in s["name"]]
        assert remote, f"no absorbed replica spans in {newest['spans']}"
        assert any(s["name"].endswith("rerank") for s in remote)
        # The failover is visible in the structured log, tied to the
        # request that hit the dead replica by its trace id.
        events = log_events(stream)
        failover = [e for e in events if e["event"] == "replica_failover"]
        assert failover and failover[0]["shard"] == 0
        assert failover[0]["trace_id"] is not None
        assert any(t["trace_id"] == failover[0]["trace_id"] for t in traces)
        assert any(e["event"] == "replica_spawn" for e in events)
        assert any(e["event"] == "cluster_close" for e in events)


class TestStatsBackwardCompat:
    def test_stats_counters_agree_with_registry(self, model, corpus):
        service = RecommendationService(model, corpus, top_k=5,
                                        cache_size=8)
        for user in (0, 1, 2, 0, 1):
            service.recommend(user)
        stats = service.stats()
        by_name = {(e["name"]): e for e in service.metrics_snapshot()
                   if not e.get("labels")}
        assert stats["requests"] == \
            by_name["repro_requests_total"]["value"] == 5
        assert stats["users_scored"] == \
            by_name["repro_users_scored_total"]["value"]
        cache = stats["cache"]
        assert cache["hits"] == by_name["repro_cache_hits_total"]["value"] == 2
        assert cache["misses"] == \
            by_name["repro_cache_misses_total"]["value"] == 3
        assert cache["size"] == by_name["repro_cache_size"]["value"] == 3
        assert by_name["repro_request_seconds"]["count"] == 5

    def test_metrics_off_keeps_stats_working(self, model, corpus):
        service = RecommendationService(model, corpus, top_k=5,
                                        metrics=False)
        service.recommend(0)
        stats = service.stats()
        assert stats["requests"] == 0  # null registry: counters stay 0
        assert service.metrics_snapshot() == []
        assert service.metrics_text() == ""

    def test_online_trainer_counters_still_integers(self, model, corpus):
        from repro.training.online import OnlineConfig

        service = RecommendationService(
            model, corpus, top_k=5,
            online_config=OnlineConfig(refresh_every=100))
        service.update_interactions([0, 1, 2, 3], [1, 2, 3, 4])
        online = service.online
        assert online.events_seen == 4
        # These feed seed arithmetic (config.seed + refreshes) — they
        # must stay true ints even though a Counter backs them now.
        assert isinstance(online.events_seen, int)
        assert isinstance(online.updates_applied, int)
        assert isinstance(online.refreshes, int)
        by_name = {e["name"]: e for e in service.metrics_snapshot()}
        assert by_name["repro_online_events_total"]["value"] == 4


class TestHTTPEndpoints:
    @pytest.fixture()
    def http_service(self, model, corpus):
        service = RecommendationService(model, corpus, top_k=5, tracing=True)
        server = build_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server.url
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def fetch(self, url):
        with urllib.request.urlopen(url, timeout=10) as resp:
            return (resp.status, resp.headers.get("Content-Type"),
                    resp.read().decode())

    def test_metrics_text_is_prometheus(self, http_service):
        self.fetch(http_service + "/recommend?user=0")
        status, ctype, text = self.fetch(http_service + "/metrics")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4"
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 1" in text
        assert 'repro_request_seconds_bucket{le="+Inf"} 1' in text

    def test_metrics_json_snapshot(self, http_service):
        self.fetch(http_service + "/recommend?user=1")
        status, ctype, payload = self.fetch(
            http_service + "/metrics?format=json")
        assert status == 200 and ctype.startswith("application/json")
        entries = json.loads(payload)["metrics"]
        names = {e["name"] for e in entries}
        assert {"repro_requests_total", "repro_request_seconds"} <= names

    def test_metrics_unknown_format_400(self, http_service):
        with pytest.raises(urllib.error.HTTPError) as err:
            self.fetch(http_service + "/metrics?format=xml")
        assert err.value.code == 400

    def test_trace_endpoint_returns_spans(self, http_service):
        self.fetch(http_service + "/recommend?user=2")
        status, _, payload = self.fetch(http_service + "/trace?n=1")
        assert status == 200
        (trace,) = json.loads(payload)["traces"]
        assert trace["name"] == "recommend_batch"
        span_names = {s["name"] for s in trace["spans"]}
        assert "cache_lookup" in span_names
        assert "rerank" in span_names


@pytest.mark.cluster
class TestClusterAggregation:
    def test_merged_and_per_shard_series(self, model, corpus):
        with ServingCluster(make_factory(model, corpus),
                            n_shards=2) as cluster:
            for user in range(6):
                cluster.recommend(user)
            entries = cluster.metrics_snapshot()
            text = cluster.metrics_text()
        merged = {e["name"]: e for e in entries if not e.get("labels")}
        assert merged["repro_requests_total"]["value"] == 6
        assert merged["repro_cluster_requests_routed_total"]["value"] == 6
        per_shard = [e for e in entries
                     if e["name"] == "repro_requests_total"
                     and e.get("labels", {}).get("shard") is not None]
        assert {e["labels"]["shard"] for e in per_shard} == {"0", "1"}
        assert sum(e["value"] for e in per_shard) == 6
        assert 'repro_requests_total{shard="0"}' in text
        assert text.count("# TYPE repro_requests_total counter") == 1
