"""Seeded load generation against a live recommendation HTTP server.

Shared by the load test (``tests/serving/test_load.py``) and the
cluster throughput benchmark
(``benchmarks/test_cluster_throughput.py``): both need the same
reproducible request mix and the same multi-threaded driver, and both
must agree on how latency percentiles are computed.

The request mix is Zipf-skewed over user *rank* — a fixed seeded
permutation of the user space assigns ranks, and request ``i`` queries
the user at rank ``Z_i - 1`` where ``Z_i`` is a bounded Zipf draw.
This mirrors production traffic (a head of hot users dominating the
stream) and exercises the per-shard LRU caches realistically; the
whole schedule is a pure function of ``(n_users, n_requests, seed)``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from dataclasses import dataclass, field

import numpy as np


def zipf_users(n_users: int, n_requests: int, seed: int = 0,
               alpha: float = 1.3) -> np.ndarray:
    """``int64 [n_requests]`` seeded Zipf-skewed user ids.

    ``alpha`` is the Zipf exponent (heavier head for larger values);
    draws beyond ``n_users`` are redrawn by modular fold so every id
    stays valid without truncating the distribution's support order.
    """
    if n_users < 1 or n_requests < 1:
        raise ValueError("n_users and n_requests must be positive")
    rng = np.random.default_rng(seed)
    ranks = (rng.zipf(alpha, size=n_requests) - 1) % n_users
    # Decouple "hot" from "low id": rank r serves the r-th user of a
    # seeded permutation, so shard routing sees scattered hot users.
    permutation = rng.permutation(n_users)
    return permutation[ranks].astype(np.int64)


@dataclass
class LoadResult:
    """Outcome of one multi-threaded drive against a server."""

    latencies: np.ndarray               # seconds, request order per thread
    responses: list                     # parsed JSON bodies, schedule order
    errors: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def n_requests(self) -> int:
        return int(self.latencies.size)

    @property
    def requests_per_sec(self) -> float:
        return self.n_requests / self.wall_seconds if self.wall_seconds else 0.0

    def percentile_ms(self, q: float) -> float:
        return float(np.percentile(self.latencies, q) * 1000.0)

    def summary(self) -> dict:
        return {
            "requests": self.n_requests,
            "errors": len(self.errors),
            "req_per_sec": self.requests_per_sec,
            "p50_ms": self.percentile_ms(50),
            "p99_ms": self.percentile_ms(99),
        }


def drive(base_url: str, users: np.ndarray, n_threads: int = 4,
          k: int = 5, timeout: float = 30.0) -> LoadResult:
    """Drive ``GET /recommend`` for every scheduled user, concurrently.

    The schedule is split round-robin across ``n_threads`` client
    threads (deterministic partition, so reruns issue identical
    per-thread streams).  Responses land back in schedule order;
    failures are collected, never raised — the caller asserts on
    ``errors`` so a load test reports *all* failures, not the first.
    """
    users = np.asarray(users, dtype=np.int64)
    slots: list = [None] * users.size
    latencies = np.zeros(users.size)
    errors: list = []
    error_lock = threading.Lock()

    def client(thread_id: int) -> None:
        for pos in range(thread_id, users.size, n_threads):
            url = f"{base_url}/recommend?user={users[pos]}&k={k}"
            start = time.perf_counter()
            try:
                with urllib.request.urlopen(url, timeout=timeout) as resp:
                    body = json.loads(resp.read())
                latencies[pos] = time.perf_counter() - start
                slots[pos] = body
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                latencies[pos] = time.perf_counter() - start
                with error_lock:
                    errors.append((pos, int(users[pos]), repr(exc)))

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(n_threads)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return LoadResult(latencies=latencies, responses=slots, errors=errors,
                      wall_seconds=wall)
