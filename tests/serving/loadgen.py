"""Seeded load generation against a live recommendation HTTP server.

The harness graduated into the shipped package as
:mod:`repro.scenarios.loadgen` (schedule builders live in
:mod:`repro.scenarios.schedules`) so the scenario engine and the CLI
can drive traffic without importing test code.  This module re-exports
the original surface — ``zipf_users`` / ``LoadResult`` / ``drive`` are
the same objects, so every existing load test and cluster benchmark
runs byte-identically; ``tests/scenarios/test_loadgen.py`` pins the
Zipf schedule bytes against drift.
"""

from repro.scenarios.loadgen import (  # noqa: F401
    LoadResult,
    drive,
    resolve_schedule,
    zipf_users,
)
