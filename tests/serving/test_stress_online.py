"""Concurrency stress for the online path: update/recommend atomicity.

The invariant under interleaved ``POST /update`` and ``GET /recommend``
from many clients: once a client's report of ``(user, item)`` has been
acknowledged, *no later recommendation for that user may contain that
item* — fold-in, cache invalidation and the seen-item index overlay
must commit atomically with respect to concurrent readers.  Each
client thread owns a disjoint set of users, reports items it was just
recommended, and re-queries after every acknowledgement; any stale
cache entry, half-applied overlay or unmasked ANN candidate surfaces
as a violation.

Runs against a live ``ThreadingHTTPServer`` twice: the plain exact
service and the ANN service (whose candidate path has its own masking
and fallback logic to get wrong).
"""

import json
import threading
import urllib.request

import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.serving import ANNConfig, RecommendationService, build_server

pytestmark = [pytest.mark.serving, pytest.mark.cluster]

N_THREADS = 6
ROUNDS = 12
TOP_K = 5


@pytest.fixture(scope="module")
def corpus():
    return make_dataset("amazon-auto", seed=0, scale=0.3)


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read())


def _post(url, payload, timeout=30):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return json.loads(resp.read())


def run_stress(service, corpus):
    server = build_server(service)
    accept = threading.Thread(target=server.serve_forever, daemon=True)
    accept.start()
    violations = []
    failures = []
    barrier = threading.Barrier(N_THREADS)

    def client(thread_id: int) -> None:
        # Disjoint users per thread: the invariant is per-client
        # (a client only knows what *it* reported was acknowledged).
        users = [u for u in range(corpus.n_users)
                 if u % N_THREADS == thread_id][:4]
        reported: dict[int, set[int]] = {u: set() for u in users}
        try:
            barrier.wait(timeout=30)
            for _ in range(ROUNDS):
                for user in users:
                    body = _get(f"{server.url}/recommend?user={user}"
                                f"&k={TOP_K}")
                    overlap = set(body["items"]) & reported[user]
                    if overlap:
                        violations.append((thread_id, user, overlap))
                    item = int(body["items"][0])
                    _post(server.url + "/update",
                          {"user": user, "item": item})
                    reported[user].add(item)
                    after = _get(f"{server.url}/recommend?user={user}"
                                 f"&k={TOP_K}")
                    stale = set(after["items"]) & reported[user]
                    if stale:
                        violations.append((thread_id, user, stale))
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            failures.append((thread_id, repr(exc)))

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    server.shutdown()
    server.server_close()
    assert failures == []
    assert violations == [], (
        f"served items their client already reported: {violations[:5]}")


class TestInterleavedUpdateRecommend:
    def test_exact_service_never_serves_reported_items(self, corpus):
        model = build_model("MF", corpus, k=8, seed=0)
        run_stress(RecommendationService(model, corpus, top_k=TOP_K),
                   corpus)

    def test_ann_service_never_serves_reported_items(self, corpus):
        model = build_model("BPR-MF", corpus, k=8, seed=0)
        service = RecommendationService(model, corpus, top_k=TOP_K,
                                        ann=ANNConfig(min_items=16))
        assert service.scorer.ann_active
        run_stress(service, corpus)

    def test_online_foldin_service_never_serves_reported_items(self, corpus):
        from repro.training.online import OnlineConfig

        model = build_model("MF", corpus, k=8, seed=0)
        service = RecommendationService(
            model, corpus, top_k=TOP_K,
            online_config=OnlineConfig(sides=("user",), seed=0))
        run_stress(service, corpus)
