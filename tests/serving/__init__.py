"""Test package."""
