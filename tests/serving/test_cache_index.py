"""LRU cache semantics and the top-K retrieval index."""

import numpy as np
import pytest

from repro.serving.cache import LRUCache
from repro.serving.index import TopKIndex
from tests.helpers import make_tiny_dataset

pytestmark = pytest.mark.serving


class TestLRUCache:
    def test_hit_and_miss_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hit_rate"] == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a" → "b" is now least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh, no eviction
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_predicate_invalidation(self):
        cache = LRUCache(8)
        for user in range(4):
            for k in (5, 10):
                cache.put((user, k), user * k)
        dropped = cache.invalidate(lambda key: key[0] == 2)
        assert dropped == 2
        assert (2, 5) not in cache and (2, 10) not in cache
        assert (1, 5) in cache
        assert cache.stats()["invalidations"] == 2

    def test_invalidate_all(self):
        cache = LRUCache(8)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestLRUCacheConcurrency:
    """The cache must be safe standalone, not only behind the service.

    ``LRUCache`` is public API; without the internal lock, concurrent
    ``get``/``put``/``invalidate`` race on the ``OrderedDict``
    (``move_to_end`` of an evicted key, double ``popitem``, resize
    during iteration) and corrupt the recency order.  The service's own
    coarse lock happened to shield its instance — consumers outside it
    had no such guarantee.  This hammer pins the standalone contract.
    """

    def test_concurrent_hammer_is_consistent(self):
        import threading

        capacity = 32
        cache = LRUCache(capacity)
        errors = []
        barrier = threading.Barrier(8)

        def worker(thread_id: int) -> None:
            try:
                barrier.wait(timeout=30)
                for round_no in range(400):
                    key = (round_no * 7 + thread_id) % 80
                    value = cache.get(key)
                    assert value is None or value == key * 2
                    cache.put(key, key * 2)
                    if round_no % 50 == thread_id:
                        cache.invalidate(lambda k: k % 8 == thread_id)
                    if round_no % 97 == 0:
                        cache.stats()
                        len(cache)
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert len(cache) <= capacity
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 400
        # Every surviving entry still carries its own value.
        for key in range(80):
            value = cache.get(key)
            assert value is None or value == key * 2


class TestTopKIndex:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_tiny_dataset(n_users=10, n_items=20)

    def test_seen_matches_positives(self, ds):
        index = TopKIndex.from_dataset(ds)
        positives = ds.positives_by_user()
        for user in range(ds.n_users):
            assert set(index.seen(user).tolist()) == positives[user]
        assert index.max_seen() == max(len(s) for s in positives)

    def test_mask_seen_sets_neg_inf(self, ds):
        index = TopKIndex.from_dataset(ds)
        users = np.arange(4, dtype=np.int64)
        scores = np.zeros((4, ds.n_items))
        index.mask_seen(scores, users)
        for row, user in enumerate(users):
            seen = index.seen(user)
            assert np.all(np.isneginf(scores[row, seen]))
            unseen = np.setdiff1d(np.arange(ds.n_items), seen)
            assert np.all(scores[row, unseen] == 0.0)

    def test_topk_ranks_by_score(self):
        index = TopKIndex(2, 6)
        scores = np.array([[0.1, 5.0, 3.0, -1.0, 4.0, 0.0],
                           [9.0, 1.0, 2.0, 8.0, 0.0, 7.0]])
        np.testing.assert_array_equal(index.topk(scores, 3),
                                      [[1, 4, 2], [0, 3, 5]])
        with pytest.raises(ValueError):
            index.topk(scores, 0)
        with pytest.raises(ValueError):
            index.topk(scores, 7)

    def test_add_updates_overlay(self, ds):
        index = TopKIndex.from_dataset(ds)
        unseen = np.setdiff1d(np.arange(ds.n_items), index.seen(0))
        target = int(unseen[0])
        assert index.add(0, target) is True
        assert index.add(0, target) is False        # already in overlay
        already = int(index.seen(1)[0])
        assert index.add(1, already) is False       # already in base CSR
        assert target in index.seen(0).tolist()
        scores = np.zeros((1, ds.n_items))
        index.mask_seen(scores, np.array([0]))
        assert np.isneginf(scores[0, target])

    def test_add_range_checks(self, ds):
        index = TopKIndex.from_dataset(ds)
        with pytest.raises(ValueError):
            index.add(ds.n_users, 0)
        with pytest.raises(ValueError):
            index.add(0, ds.n_items)

    def test_empty_index(self):
        index = TopKIndex(3, 5)
        assert index.max_seen() == 0
        assert index.seen(0).size == 0
        scores = np.random.default_rng(0).normal(size=(3, 5))
        index.mask_seen(scores, np.arange(3))       # no-op, no crash
        assert np.isfinite(scores).all()
