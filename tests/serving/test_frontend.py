"""Frontend equivalence and the serving bugfix sweep.

The contract under test: the selector-based micro-batching frontend
(``repro.serving.frontend.AsyncFrontend``) and the stdlib threaded
frontend answer the same request stream with byte-identical bodies —
for a single service and for sharded clusters — while the async loop
actually coalesces concurrent ``/recommend`` calls into
``recommend_batch`` micro-batches.  Plus the timeout regression (S1):
a half-sent request gets a 408 and a closed connection instead of
holding a worker hostage.
"""

import http.client
import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.experiments.registry import build_model
from repro.serving.cluster import ServingCluster
from repro.serving.server import build_server
from repro.serving.service import RecommendationService
from tests.helpers import make_tiny_dataset

pytestmark = [pytest.mark.serving, pytest.mark.streaming]

MAX_BATCH = 8


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(seed=0, n_users=12, n_items=15)


@pytest.fixture(scope="module")
def model(ds):
    return build_model("MF", ds, k=4, seed=0)


@contextmanager
def serve(service, frontend, **kwargs):
    server = build_server(service, max_update_batch=MAX_BATCH,
                          frontend=frontend, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@contextmanager
def deployment(model, ds, n_shards, frontend, **kwargs):
    """A served deployment: plain service or an n-shard cluster."""
    factory = lambda: RecommendationService(model, ds, top_k=5, cache_size=0)
    if n_shards == 1:
        service = factory()
        with serve(service, frontend, **kwargs) as server:
            yield server
    else:
        with ServingCluster(factory, n_shards=n_shards) as cluster:
            with serve(cluster, frontend, **kwargs) as server:
                yield server


def call(url, method, path, body=None):
    """One request; returns ``(status, content_type, body_bytes)``."""
    host, port = url.split("//")[1].split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=10)
    try:
        headers = {}
        data = None
        if body is not None:
            data = body if isinstance(body, bytes) else json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=data, headers=headers)
        resp = conn.getresponse()
        return resp.status, resp.getheader("Content-Type"), resp.read()
    finally:
        conn.close()


#: One deterministic request stream exercising the happy paths and every
#: class of client error, including state-changing updates mid-stream.
SCRIPT = [
    ("GET", "/healthz", None),
    ("GET", "/recommend?user=1&k=4", None),
    ("GET", "/recommend?user=2&k=4&exclude_seen=false", None),
    ("GET", "/recommend", None),
    ("GET", "/recommend?user=abc", None),
    ("GET", "/recommend?user=99999&k=4", None),
    ("GET", "/recommend?user=1&k=0", None),
    ("GET", "/nope", None),
    ("POST", "/update", {"user": 0, "item": 1}),
    ("POST", "/update", {"events": [[1, 2], [2, 3]]}),
    ("POST", "/update", b"{oops"),
    ("POST", "/update", b""),
    ("POST", "/update", b"[1, 2]"),
    ("POST", "/update", {"user": "0", "item": 1}),
    ("POST", "/update", {"events": [[0, 1]] * (MAX_BATCH + 1)}),
    ("POST", "/nope", {"user": 0, "item": 1}),
    ("GET", "/recommend?user=0&k=4", None),  # reflects the fold-ins above
]


def transcript(server):
    return [call(server.url, method, path, body)
            for method, path, body in SCRIPT]


class TestFrontendEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_byte_identical_bodies_across_frontends(self, model, ds,
                                                    n_shards):
        results = {}
        for frontend in ("threaded", "async"):
            with deployment(model, ds, n_shards, frontend) as server:
                results[frontend] = transcript(server)
        assert results["threaded"] == results["async"]
        statuses = [status for status, _, _ in results["async"]]
        assert statuses.count(200) == 6
        assert statuses.count(400) == 9
        assert statuses.count(404) == 2

    def test_metrics_shape_identical_across_frontends(self, model, ds):
        shapes = {}
        for frontend in ("threaded", "async"):
            service = RecommendationService(model, ds, top_k=5, cache_size=0)
            with serve(service, frontend) as server:
                call(server.url, "GET", "/recommend?user=1&k=4")
                status, ctype, body = call(server.url, "GET",
                                           "/metrics?format=json")
                assert status == 200 and ctype == "application/json"
                metrics = json.loads(body)["metrics"]
                shapes[frontend] = sorted(
                    (entry["name"], entry["type"], tuple(sorted(entry)))
                    for entry in metrics)
                # The text exposition must carry the same series.
                status, ctype, text = call(server.url, "GET", "/metrics")
                assert status == 200 and ctype.startswith("text/plain")
                for entry in metrics:
                    assert entry["name"].encode() in text
        assert shapes["threaded"] == shapes["async"]

    def test_concurrent_async_requests_all_succeed(self, model, ds):
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        results = [None] * 24
        with serve(service, "async") as server:
            def worker(i):
                user = i % ds.n_users
                status, _, body = call(server.url, "GET",
                                       f"/recommend?user={user}&k=3")
                results[i] = (status, json.loads(body)["user"], user)
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(results))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15)
        assert all(r is not None for r in results)
        for status, got_user, want_user in results:
            assert status == 200 and got_user == want_user


class _CoalescingProbe:
    """Service proxy that counts ``recommend_batch`` calls and slows
    them down enough for queued requests to pile up behind the first."""

    def __init__(self, inner):
        self._inner = inner
        self.lock = threading.Lock()
        self.batch_calls = 0
        self.users_scored = 0

    def recommend_batch(self, users, k=None, exclude_seen=None):
        with self.lock:
            self.batch_calls += 1
            self.users_scored += len(users)
        time.sleep(0.02)
        return self._inner.recommend_batch(users, k=k,
                                           exclude_seen=exclude_seen)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestMicroBatching:
    def test_concurrent_recommends_coalesce(self, model, ds):
        n = 16
        probe = _CoalescingProbe(
            RecommendationService(model, ds, top_k=5, cache_size=0))
        with serve(probe, "async", batch_window=0.05,
                   max_batch=n) as server:
            results = [None] * n
            def worker(i):
                results[i] = call(server.url, "GET",
                                  f"/recommend?user={i % ds.n_users}&k=3")
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15)
        assert all(status == 200 for status, _, _ in results)
        assert probe.users_scored == n
        # The point of the frontend: fewer scoring calls than requests.
        assert probe.batch_calls < n

    def test_coalesced_responses_match_sequential(self, model, ds):
        """Batched answers must be the answers, not approximations."""
        reference = RecommendationService(model, ds, top_k=5, cache_size=0)
        want = {user: reference.recommend(user, k=3).to_dict()
                for user in range(ds.n_users)}
        probe = _CoalescingProbe(
            RecommendationService(model, ds, top_k=5, cache_size=0))
        with serve(probe, "async", batch_window=0.05, max_batch=32) as server:
            results = {}
            lock = threading.Lock()
            def worker(user):
                _, _, body = call(server.url, "GET",
                                  f"/recommend?user={user}&k=3")
                with lock:
                    results[user] = json.loads(body)
            threads = [threading.Thread(target=worker, args=(u,))
                       for u in range(ds.n_users)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15)
        assert results == want


def read_response(sock, timeout=10.0):
    """Parse one HTTP response off a raw socket; ``None`` if the peer
    closed without sending one."""
    sock.settimeout(timeout)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        if not chunk:
            return None
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(b":")
        headers[key.decode().lower()] = value.strip().decode()
    length = int(headers.get("content-length", "0"))
    while len(body) < length:
        chunk = sock.recv(4096)
        if not chunk:
            break
        body += chunk
    return status, headers, body


def connect(server):
    host, port = server.server_address[:2]
    return socket.create_connection((host, port), timeout=10)


class TestRequestTimeouts:
    """S1: a stalled request must not hold a worker hostage.

    Before the fix the threaded frontend's handler thread blocked
    forever on a half-sent body; now both frontends give the client
    ``request_timeout`` seconds to finish, answer 408, and close.
    """

    @pytest.mark.parametrize("frontend", ["threaded", "async"])
    def test_half_sent_body_gets_408_and_close(self, model, ds, frontend):
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, frontend, request_timeout=0.4) as server:
            with connect(server) as sock:
                sock.sendall(b"POST /update HTTP/1.1\r\n"
                             b"Host: x\r\nContent-Type: application/json\r\n"
                             b"Content-Length: 100\r\n\r\n"
                             b'{"user": 0')  # ...and never finish
                response = read_response(sock)
                assert response is not None, "connection reset with no 408"
                status, headers, body = response
                assert status == 408
                assert json.loads(body) == {"error": "request timed out"}
                # The server must hang up, not wait for a retry.
                assert sock.recv(4096) == b""

    def test_async_half_sent_request_line_gets_408(self, model, ds):
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, "async", request_timeout=0.4) as server:
            with connect(server) as sock:
                sock.sendall(b"GET /heal")  # head never completes
                response = read_response(sock)
                assert response is not None
                assert response[0] == 408
                assert sock.recv(4096) == b""

    def test_async_idle_keepalive_closed_silently(self, model, ds):
        """An idle connection that sent *nothing* is not an error; it is
        reaped without a response (mirroring the threaded close)."""
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, "async", request_timeout=0.4) as server:
            with connect(server) as sock:
                assert read_response(sock) is None

    def test_threaded_worker_not_starved_by_stalled_peer(self, model, ds):
        """While one client stalls, other clients must keep being
        served — the original bug serialized behind the stalled read."""
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, "threaded", request_timeout=2.0) as server:
            with connect(server) as stalled:
                stalled.sendall(b"POST /update HTTP/1.1\r\nHost: x\r\n"
                                b"Content-Length: 50\r\n\r\n{")
                status, _, _ = call(server.url, "GET", "/healthz")
                assert status == 200


class TestAsyncProtocol:
    def test_keep_alive_serves_sequential_requests(self, model, ds):
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, "async") as server:
            with connect(server) as sock:
                for _ in range(3):
                    sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                    status, _, body = read_response(sock)
                    assert status == 200
                    assert json.loads(body) == {"status": "ok"}

    def test_pipelined_requests_each_get_a_response(self, model, ds):
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, "async") as server:
            with connect(server) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n" * 2)
                for _ in range(2):
                    status, _, body = read_response(sock)
                    assert status == 200
                    assert json.loads(body) == {"status": "ok"}

    def test_malformed_request_line_gets_400(self, model, ds):
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, "async") as server:
            with connect(server) as sock:
                sock.sendall(b"NONSENSE\r\nHost: x\r\n\r\n")
                status, _, body = read_response(sock)
                assert status == 400
                assert "malformed" in json.loads(body)["error"]

    def test_unsupported_method_gets_501(self, model, ds):
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, "async") as server:
            with connect(server) as sock:
                sock.sendall(b"DELETE /update HTTP/1.1\r\nHost: x\r\n\r\n")
                status, _, _ = read_response(sock)
                assert status == 501

    def test_invalid_content_length_gets_400(self, model, ds):
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, "async") as server:
            with connect(server) as sock:
                sock.sendall(b"POST /update HTTP/1.1\r\nHost: x\r\n"
                             b"Content-Length: banana\r\n\r\n")
                status, _, body = read_response(sock)
                assert status == 400
                assert "Content-Length" in json.loads(body)["error"]

    def test_oversized_body_drained_and_rejected(self, model, ds):
        """Async twin of the threaded drain regression: a body far past
        the socket buffers still yields a clean 400, not a reset."""
        service = RecommendationService(model, ds, top_k=5, cache_size=0)
        with serve(service, "async") as server:
            padding = b'{"padding": "' + b"x" * (4 << 20) + b'"}'
            status, _, body = call(server.url, "POST", "/update",
                                   body=padding)
            assert status == 400
            assert "bytes exceeds" in json.loads(body)["error"]
