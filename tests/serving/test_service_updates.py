"""RecommendationService.update_interactions: fold-in + invalidation."""

import numpy as np
import pytest

from repro.experiments.registry import build_model
from repro.serving.service import RecommendationService
from repro.training.online import IncrementalTrainer, OnlineConfig
from tests.helpers import make_tiny_dataset

pytestmark = [pytest.mark.serving, pytest.mark.streaming]


@pytest.fixture
def dataset():
    return make_tiny_dataset(seed=0)


def _service(dataset, **kwargs):
    model = build_model("MF", dataset, k=4, seed=0)
    return RecommendationService(model, dataset, top_k=3, cache_size=64,
                                 **kwargs)


class TestWithoutOnlineTrainer:
    def test_add_interaction_still_masks_and_invalidates(self, dataset):
        service = _service(dataset)
        rec = service.recommend(0)
        target = int(rec.items[0])
        assert service.add_interaction(0, target) is True
        assert service.add_interaction(0, target) is False  # now known
        rec2 = service.recommend(0)
        assert target not in rec2.items

    def test_update_without_trainer_reports_no_fold_in(self, dataset):
        service = _service(dataset)
        report = service.update_interactions([0, 1], [2, 3])
        assert report["folded_in"] is False
        assert "loss" not in report

    def test_known_pair_is_not_novel(self, dataset):
        service = _service(dataset)
        user, item = int(dataset.users[0]), int(dataset.items[0])
        report = service.update_interactions([user], [item])
        assert report["novel"] == 0


class TestWithOnlineTrainer:
    def test_fold_in_changes_the_served_scores(self, dataset):
        service = _service(
            dataset, online_config=OnlineConfig(sides=("user",), seed=0))
        before = service.recommend(0, exclude_seen=False).scores.copy()
        for _ in range(5):
            service.update_interactions([0], [int(dataset.items[0])])
        service.cache.invalidate()
        after = service.recommend(0, exclude_seen=False).scores
        assert not np.array_equal(before, after)

    def test_user_side_fold_in_keeps_other_users_stable(self, dataset):
        service = _service(
            dataset, online_config=OnlineConfig(sides=("user",), seed=0))
        other_before = service.recommend(5, exclude_seen=False)
        service.update_interactions([0], [3])
        assert (5, 3, False) in service.cache  # untouched user kept
        service.cache.invalidate()
        other_after = service.recommend(5, exclude_seen=False)
        # User-side-only fold-in cannot move an untouched user's scores.
        np.testing.assert_array_equal(other_before.scores, other_after.scores)

    def test_item_side_fold_in_flushes_the_whole_cache(self, dataset):
        service = _service(
            dataset,
            online_config=OnlineConfig(sides=("user", "item"), seed=0))
        service.recommend(5)
        assert (5, 3, True) in service.cache
        report = service.update_interactions([0], [3])
        assert report["folded_in"] is True
        assert (5, 3, True) not in service.cache

    def test_user_side_fold_in_skips_the_item_state_rebuild(self, dataset):
        """item_state is untouched by user-side updates on a local
        model, so the scorer must not pay a rebuild per event."""
        service = _service(
            dataset, online_config=OnlineConfig(sides=("user",), seed=0))
        state = service.scorer._state
        service.update_interactions([0], [3])
        assert service.scorer._state is state

    def test_item_side_fold_in_refreshes_the_scorer(self, dataset):
        service = _service(
            dataset,
            online_config=OnlineConfig(sides=("user", "item"), seed=0))
        state = service.scorer._state
        service.update_interactions([0], [3])
        assert service.scorer._state is not state

    def test_non_local_model_flushes_the_whole_cache(self, dataset):
        """NGCF propagates updates to every entity, so even user-side
        fold-in must invalidate all cached lists."""
        model = build_model("NGCF", dataset, k=4, seed=0,
                            train_users=dataset.users,
                            train_items=dataset.items)
        service = RecommendationService(
            model, dataset, top_k=3, cache_size=64,
            online_config=OnlineConfig(sides=("user",), seed=0))
        service.recommend(5)
        assert (5, 3, True) in service.cache
        service.update_interactions([0], [3])
        assert (5, 3, True) not in service.cache

    def test_explicit_trainer_and_config_conflict(self, dataset):
        model = build_model("MF", dataset, k=4, seed=0)
        trainer = IncrementalTrainer(model, dataset, OnlineConfig(seed=0))
        with pytest.raises(ValueError, match="not both"):
            RecommendationService(model, dataset, online=trainer,
                                  online_config=OnlineConfig(seed=0))

    def test_update_report_counts(self, dataset):
        service = _service(
            dataset, online_config=OnlineConfig(sides=("user",), seed=0))
        report = service.update_interactions([0, 0], [3, 3])
        assert report["events"] == 2
        assert report["novel"] <= 1  # duplicate within the batch
        assert service.stats()["updates_folded_in"] == 2

    def test_failed_fold_in_leaves_index_and_cache_consistent(self, dataset):
        """If the fold-in step raises, the events stay in the seen
        overlay and the touched user's stale cache entry is already
        gone — the cache may never serve a just-consumed item."""
        service = _service(
            dataset, online_config=OnlineConfig(sides=("user",), seed=0))
        rec = service.recommend(0)
        target = int(rec.items[0])
        assert (0, 3, True) in service.cache

        def boom(users, items, timestamps=None):
            raise RuntimeError("simulated fold-in failure")

        service.online.update = boom
        with pytest.raises(RuntimeError, match="simulated"):
            service.update_interactions([0], [target])
        assert (0, 3, True) not in service.cache
        assert target in service.index.seen(0)

    def test_rejects_empty_and_ragged_batches(self, dataset):
        service = _service(
            dataset, online_config=OnlineConfig(sides=("user",), seed=0))
        with pytest.raises(ValueError, match="no events"):
            service.update_interactions([], [])
        with pytest.raises(ValueError, match="parallel"):
            service.update_interactions([0, 1], [2])
