"""Sharded-cluster correctness: equivalence, routing, failover, stats.

The central contract: for the same artifact and the same request
stream, a :class:`~repro.serving.cluster.ServingCluster` produces
byte-for-byte the JSON bodies the single-process
:class:`~repro.serving.service.RecommendationService` produces — for
any shard count, with or without a replica dying mid-stream.
"""

import json

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.registry import build_model
from repro.serving import (
    ANNConfig,
    NoLiveReplicaError,
    RecommendationService,
    ServingCluster,
)

pytestmark = [pytest.mark.serving, pytest.mark.cluster]


@pytest.fixture(scope="module")
def corpus():
    return make_dataset("amazon-auto", seed=0, scale=0.3)


@pytest.fixture(scope="module")
def model(corpus):
    return build_model("MF", corpus, k=8, seed=0)


@pytest.fixture(scope="module")
def request_stream(corpus):
    rng = np.random.default_rng(11)
    return rng.integers(0, corpus.n_users, size=48).tolist()


def make_factory(model, corpus, **kwargs):
    return lambda: RecommendationService(model, corpus, top_k=5, **kwargs)


def body(rec) -> str:
    """The exact JSON bytes the HTTP layer would send."""
    return json.dumps(rec.to_dict())


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_byte_identical_to_single_process(self, model, corpus,
                                              request_stream, n_shards):
        reference = RecommendationService(model, corpus, top_k=5)
        with ServingCluster(make_factory(model, corpus),
                            n_shards=n_shards) as cluster:
            for user in request_stream:
                assert body(cluster.recommend(user)) == \
                    body(reference.recommend(user))

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_byte_identical_with_replica_kill_mid_stream(
            self, model, corpus, request_stream, n_shards):
        reference = RecommendationService(model, corpus, top_k=5)
        with ServingCluster(make_factory(model, corpus), n_shards=n_shards,
                            replicas=2) as cluster:
            for position, user in enumerate(request_stream):
                if position == len(request_stream) // 2:
                    cluster.kill_replica(0, 0)
                assert body(cluster.recommend(user)) == \
                    body(reference.recommend(user))
            assert cluster.alive_counts()[0] == 1

    def test_updates_route_and_stay_equivalent(self, model, corpus):
        reference = RecommendationService(model, corpus, top_k=5)
        events_users = [0, 1, 2, 3, 4, 5, 0, 1]
        with ServingCluster(make_factory(model, corpus),
                            n_shards=3) as cluster:
            before = {u: body(cluster.recommend(u)) for u in range(6)}
            items = [int(cluster.recommend(u).items[0])
                     for u in events_users]
            got = cluster.update_interactions(events_users, items)
            want = reference.update_interactions(events_users, items)
            for key in ("events", "novel", "folded_in"):
                assert got[key] == want[key]
            for user in range(6):
                after = body(cluster.recommend(user))
                assert after == body(reference.recommend(user))
                assert after != before[user]  # seen overlay actually moved

    def test_ann_cluster_matches_ann_single_process(self, corpus):
        model = build_model("BPR-MF", corpus, k=8, seed=0)
        ann = ANNConfig(min_items=16)
        reference = RecommendationService(model, corpus, top_k=5, ann=ann)
        assert reference.scorer.ann_active
        with ServingCluster(make_factory(model, corpus, ann=ann),
                            n_shards=2) as cluster:
            for user in range(24):
                assert body(cluster.recommend(user)) == \
                    body(reference.recommend(user))


class TestRoutingAndLifecycle:
    def test_routing_is_deterministic_and_seeded(self, model, corpus):
        with ServingCluster(make_factory(model, corpus), n_shards=4,
                            start=False) as cluster:
            shards = [cluster.route(u) for u in range(200)]
            assert shards == [cluster.route(u) for u in range(200)]
            assert set(shards) == {0, 1, 2, 3}     # all shards populated
            reseeded = ServingCluster(make_factory(model, corpus),
                                      n_shards=4, seed=99, start=False)
            assert [reseeded.route(u) for u in range(200)] != shards

    def test_constructor_validation(self, model, corpus):
        with pytest.raises(ValueError):
            ServingCluster(make_factory(model, corpus), n_shards=0,
                           start=False)
        with pytest.raises(ValueError):
            ServingCluster(make_factory(model, corpus), n_shards=1,
                           replicas=0, start=False)

    def test_client_errors_propagate_with_type(self, model, corpus):
        with ServingCluster(make_factory(model, corpus),
                            n_shards=2) as cluster:
            with pytest.raises(ValueError, match="out of range"):
                cluster.recommend(corpus.n_users + 7)
            with pytest.raises(ValueError, match="out of range"):
                cluster.update_interactions([0], [corpus.n_items])
            with pytest.raises(ValueError, match="parallel"):
                cluster.update_interactions([0, 1], [2])
            # Whole-batch rejection: nothing was ingested anywhere.
            assert cluster.stats()["interactions_added"] == 0

    def test_no_live_replica_raises(self, model, corpus):
        with ServingCluster(make_factory(model, corpus),
                            n_shards=2) as cluster:
            victim_shard = cluster.route(0)
            cluster.kill_replica(victim_shard, 0)
            with pytest.raises(NoLiveReplicaError):
                cluster.recommend(0)
            # The other shard keeps serving its own users.
            other = next(u for u in range(50)
                         if cluster.route(u) != victim_shard)
            assert len(cluster.recommend(other).items) == 5
            # A batch spanning the dark shard is rejected *before* the
            # live shard ingests anything (whole-batch precheck).
            with pytest.raises(NoLiveReplicaError, match="before ingest"):
                cluster.update_interactions([0, other], [1, 1])
            assert cluster.stats()["interactions_added"] == 0

    def test_stats_aggregates_across_shards(self, model, corpus):
        with ServingCluster(make_factory(model, corpus), n_shards=3,
                            replicas=2) as cluster:
            for user in range(12):
                cluster.recommend(user)
                cluster.recommend(user)        # cache hit on its shard
            stats = cluster.stats()
            assert stats["requests"] == 24
            assert stats["users_scored"] == 12
            assert stats["cache"]["hits"] >= 12
            assert stats["cluster"]["shards"] == 3
            assert stats["cluster"]["replicas"] == 2
            assert stats["cluster"]["alive"] == [2, 2, 2]
            assert stats["cluster"]["requests_routed"] == 24
            assert len(stats["per_shard"]) == 3
            # Per-shard requests sum to the cluster total: routing
            # sent every request somewhere, nothing double-counted.
            assert sum(entry["requests"]
                       for entry in stats["per_shard"]) == 24

    def test_recommend_batch_scatters_and_reorders(self, model, corpus,
                                                   request_stream):
        reference = RecommendationService(model, corpus, top_k=5)
        with ServingCluster(make_factory(model, corpus),
                            n_shards=4) as cluster:
            batch = cluster.recommend_batch(request_stream)
            singles = [reference.recommend(u) for u in request_stream]
            # Ranked lists are identical; scores agree to float
            # reassociation (sharding regroups the scorer's user
            # blocks, and BLAS matmul summation order depends on the
            # block shape).  Byte-identity is contracted — and tested
            # above — for the per-request serving path.
            for got, want in zip(batch, singles):
                assert got.user == want.user
                np.testing.assert_array_equal(got.items, want.items)
                np.testing.assert_allclose(got.scores, want.scores,
                                           rtol=1e-12)

    def test_restart_after_close_reenables_heartbeat(self, model, corpus):
        import time

        cluster = ServingCluster(make_factory(model, corpus), n_shards=1,
                                 replicas=2, heartbeat_interval=0.05)
        try:
            cluster.close()
            cluster.start()          # restart: shutdown flag must clear
            cluster.shards[0][0].process.terminate()
            deadline = time.monotonic() + 5
            while (cluster.shards[0][0].alive
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            # Only the restarted heartbeat thread can have done this.
            assert not cluster.shards[0][0].alive
            assert len(cluster.recommend(0).items) == 5
        finally:
            cluster.close()

    def test_heartbeat_marks_dead_replicas(self, model, corpus):
        import time

        with ServingCluster(make_factory(model, corpus), n_shards=2,
                            replicas=2,
                            heartbeat_interval=0.05) as cluster:
            cluster.shards[1][0].process.terminate()
            deadline = time.monotonic() + 5
            while (cluster.shards[1][0].alive
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert not cluster.shards[1][0].alive
            # Traffic to that shard keeps flowing via the replica.
            user = next(u for u in range(50) if cluster.route(u) == 1)
            assert len(cluster.recommend(user).items) == 5
