"""MAMO and TransFM through the *whole* serving path.

The scenario engine wires ``models.mamo`` (cold-start) and
``models.transfm`` (sequential traffic) into serving; this module pins
each layer of that path in isolation so a scenario failure localizes:

- scorer equivalence — the batch scorer's grid fast path returns the
  same scores as per-pair ``predict`` (MAMO's bilinear decomposition
  is new code; TransFM's grid hook predates this suite);
- artifact round-trip — ``save_artifact``/``load_artifact`` preserve
  scores and metadata for both models (MAMO's memory tensors ride the
  state dict);
- ``/recommend`` end-to-end over live HTTP equals the in-process
  service byte-for-byte;
- online fold-in — MAMO supports item-side fold-in only (a user-only
  online config is a constructor-time error, not a silent no-op).
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.registry import SERVING_ONLY_MODELS, build_model
from repro.serving import RecommendationService, build_server
from repro.serving.artifact import load_artifact, save_artifact
from repro.serving.scorer import BatchScorer
from repro.training.online import OnlineConfig

pytestmark = pytest.mark.serving

MODELS = ["MAMO", "TransFM"]
TOP_K = 5


@pytest.fixture(scope="module")
def corpus():
    return make_dataset("movielens", seed=0, scale=0.2)


@pytest.fixture(scope="module", params=MODELS)
def named_model(request, corpus):
    return request.param, build_model(request.param, corpus, k=8, seed=0)


def test_mamo_is_serving_only_but_registered():
    assert "MAMO" in SERVING_ONLY_MODELS
    from repro.experiments.registry import RATING_MODELS, TOPN_MODELS

    # Paper tables stay untouched: MAMO never enters the table sweeps.
    assert "MAMO" not in RATING_MODELS
    assert "MAMO" not in TOPN_MODELS


class TestScorerEquivalence:
    def test_scorer_matches_predict_on_its_path(self, named_model, corpus):
        """Whichever path the scorer picks, scores equal ``predict``.

        MAMO's bilinear decomposition takes the grid fast path; TransFM
        has no grid hook and must fall back to the exact path — both
        must agree with per-pair prediction.
        """
        name, model = named_model
        scorer = BatchScorer(model, corpus)
        assert scorer.uses_fast_path == \
            (model.item_state(corpus) is not None), name
        assert scorer.uses_fast_path == (name == "MAMO")
        users = np.arange(0, corpus.n_users, 7, dtype=np.int64)
        grid = scorer.score(users)
        assert grid.shape == (users.size, corpus.n_items)
        items = np.arange(corpus.n_items, dtype=np.int64)
        for row, user in enumerate(users[:6]):
            exact = model.predict(np.full(items.size, user), items)
            np.testing.assert_allclose(grid[row], exact, atol=1e-8)

    def test_mamo_grid_factor_pair_reconstructs_the_grid(self, corpus):
        model = build_model("MAMO", corpus, k=8, seed=0)
        users = np.arange(0, min(24, corpus.n_users), dtype=np.int64)
        state = model.item_state(corpus)
        q, item_const = model.grid_factor_items(state)
        e, user_const = model.grid_factor_users(users, state)
        rebuilt = user_const[:, None] + item_const[None, :] + e @ q.T
        np.testing.assert_allclose(rebuilt, model.score_grid(users, state),
                                   atol=1e-8)


class TestArtifactRoundTrip:
    def test_scores_survive_save_load(self, named_model, corpus, tmp_path):
        name, model = named_model
        path = save_artifact(model, corpus, str(tmp_path / "bundle.npz"),
                             name, hyperparams={"k": 8, "seed": 0})
        loaded = load_artifact(path)
        assert loaded.model_name == name
        assert type(loaded.model) is type(model)
        rng = np.random.default_rng(0)
        users = rng.integers(0, corpus.n_users, size=64)
        items = rng.integers(0, corpus.n_items, size=64)
        np.testing.assert_allclose(loaded.model.predict(users, items),
                                   model.predict(users, items), atol=1e-10)

    def test_service_boots_from_artifact(self, named_model, corpus,
                                         tmp_path):
        name, model = named_model
        path = save_artifact(model, corpus, str(tmp_path / "bundle.npz"),
                             name)
        service = RecommendationService.from_artifact(path, top_k=TOP_K)
        direct = RecommendationService(model, corpus, top_k=TOP_K)
        for user in (0, 3, corpus.n_users - 1):
            np.testing.assert_array_equal(service.recommend(user).items,
                                          direct.recommend(user).items)


class TestHttpEndToEnd:
    def test_recommend_over_live_http_matches_in_process(self, named_model,
                                                         corpus):
        _name, model = named_model
        service = RecommendationService(model, corpus, top_k=TOP_K)
        reference = {user: service.recommend(user).to_dict()
                     for user in range(0, corpus.n_users, 9)}
        server = build_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            for user, expected in reference.items():
                url = (f"http://127.0.0.1:{server.server_port}"
                       f"/recommend?user={user}&k={TOP_K}")
                with urllib.request.urlopen(url, timeout=30) as resp:
                    body = json.loads(resp.read())
                assert body == expected
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)


class TestOnlineFoldIn:
    def test_mamo_folds_item_side_and_moves_item_state(self, corpus):
        model = build_model("MAMO", corpus, k=8, seed=0)
        before = model.item_factors.weight.data.copy()
        service = RecommendationService(
            model, corpus, top_k=TOP_K,
            online_config=OnlineConfig(sides=("user", "item")))
        report = service.update_interactions([1, 2, 3], [4, 5, 6])
        assert report["folded_in"]
        assert service.updates_folded_in == 3
        assert not np.allclose(model.item_factors.weight.data, before)

    def test_mamo_rejects_user_only_online_config(self, corpus):
        model = build_model("MAMO", corpus, k=8, seed=0)
        empty = np.empty(0, dtype=np.int64)
        assert model.fold_in_targets(empty, empty, sides=("user",)) == []
        with pytest.raises(ValueError):
            RecommendationService(model, corpus, top_k=TOP_K,
                                  online_config=OnlineConfig(sides=("user",)))

    def test_transfm_folds_user_side_over_http(self, corpus):
        model = build_model("TransFM", corpus, k=8, seed=0)
        service = RecommendationService(
            model, corpus, top_k=TOP_K,
            online_config=OnlineConfig(sides=("user",)))
        server = build_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            body = json.dumps({"events": [[0, 1], [2, 3]]}).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.server_port}/update", data=body,
                headers={"Content-Type": "application/json"}, method="POST")
            with urllib.request.urlopen(request, timeout=30) as resp:
                report = json.loads(resp.read())
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
        assert report["folded_in"]
        assert service.updates_folded_in == 2
