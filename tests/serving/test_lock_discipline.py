"""Regression tests for the ``_Replica.alive`` lock-discipline fix.

``repro lint``'s ``lock-unguarded-write`` rule found that
``_Replica.stop`` (and the heartbeat loop) flipped ``self.alive``
without holding ``self._lock``, while ``call`` reads and writes the
same flag under the lock.  The fix routes both through a locked
``mark_down()``.  These tests pin the behaviour the fix guarantees:
the flag flip serializes with in-flight RPCs, and a marked-down
replica rejects every subsequent call.
"""

import threading

import pytest

from repro.serving.cluster import _Replica, _ReplicaDown

pytestmark = [pytest.mark.serving, pytest.mark.cluster]


class _FakeProcess:
    def __init__(self):
        self.terminated = False

    def is_alive(self):
        return False

    def join(self, timeout=None):
        pass

    def terminate(self):
        self.terminated = True


class _FakeConn:
    """Duplex-pipe stand-in: answers ``ok`` after an optional gate."""

    def __init__(self, gate=None):
        self.gate = gate
        self.sent = []
        self.closed = False

    def send(self, msg):
        self.sent.append(msg)

    def poll(self, timeout):
        if self.gate is not None:
            return self.gate.wait(timeout)
        return True

    def recv(self):
        return ("ok", None)

    def close(self):
        self.closed = True


def _replica(conn):
    return _Replica(shard=0, index=0, process=_FakeProcess(), conn=conn,
                    call_timeout=5.0)


def test_mark_down_rejects_subsequent_calls():
    replica = _replica(_FakeConn())
    assert replica.call("recommend", 0) is None
    replica.mark_down()
    assert not replica.alive
    with pytest.raises(_ReplicaDown):
        replica.call("recommend", 0)


def test_mark_down_serializes_with_inflight_call():
    """``mark_down`` must wait for the RPC holding the lock to finish.

    Before the fix the bare ``self.alive = False`` write could land in
    the middle of ``call``'s send/recv critical section; now it blocks
    on the same lock, so the in-flight round-trip completes (and
    returns its payload) before the flag flips.
    """
    gate = threading.Event()
    replica = _replica(_FakeConn(gate=gate))
    results = []

    def rpc():
        results.append(replica.call("recommend", 0))

    caller = threading.Thread(target=rpc)
    caller.start()
    # Wait until the RPC is inside the critical section (blocked in
    # poll() with the lock held).
    while not replica.conn.sent:
        pass

    marker = threading.Thread(target=replica.mark_down)
    marker.start()
    marker.join(timeout=0.2)
    assert marker.is_alive(), "mark_down must block while an RPC holds the lock"
    assert replica.alive, "flag must not flip mid-RPC"

    gate.set()
    caller.join(timeout=5.0)
    marker.join(timeout=5.0)
    assert not caller.is_alive() and not marker.is_alive()
    assert results == [None]
    assert not replica.alive


def test_concurrent_calls_and_mark_down_converge():
    """Hammer ``call`` from many threads while one marks the replica
    down: every call either completes or raises ``_ReplicaDown``, and
    the replica ends dead — no torn state, no other exception."""
    replica = _replica(_FakeConn())
    outcomes = []
    outcomes_lock = threading.Lock()
    start = threading.Barrier(9)

    def caller():
        start.wait()
        for _ in range(50):
            try:
                replica.call("recommend", 0)
                result = "ok"
            except _ReplicaDown:
                result = "down"
            with outcomes_lock:
                outcomes.append(result)

    def killer():
        start.wait()
        replica.mark_down()

    threads = [threading.Thread(target=caller) for _ in range(8)]
    threads.append(threading.Thread(target=killer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
    assert all(not thread.is_alive() for thread in threads)
    assert len(outcomes) == 8 * 50
    assert set(outcomes) <= {"ok", "down"}
    assert not replica.alive


def test_stop_marks_down_via_locked_helper():
    replica = _replica(_FakeConn())
    replica.stop(grace=0.1)
    assert not replica.alive
    assert replica.conn.closed
    with pytest.raises(_ReplicaDown):
        replica.call("recommend", 0)
