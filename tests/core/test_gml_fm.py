"""Tests for the GML-FM model (Eq. 3) and its theoretical relations."""

import numpy as np
import pytest

from repro.core.gml_fm import GMLFM, GMLFM_DNN, GMLFM_MD
from repro.models.fm import FactorizationMachine
from tests.helpers import make_tiny_dataset


@pytest.fixture
def ds():
    return make_tiny_dataset()


class TestConstruction:
    def test_unknown_transform(self, ds):
        with pytest.raises(ValueError):
            GMLFM(ds, transform="fourier")

    def test_unknown_mode(self, ds):
        with pytest.raises(ValueError):
            GMLFM(ds, mode="fast")

    def test_unknown_distance(self, ds):
        with pytest.raises(ValueError):
            GMLFM(ds, distance="hamming")

    def test_non_euclidean_requires_naive(self, ds):
        with pytest.raises(ValueError):
            GMLFM(ds, distance="manhattan", mode="efficient")
        GMLFM(ds, distance="manhattan", mode="naive")  # fine

    def test_factories(self, ds):
        assert GMLFM_MD(ds).transform_kind == "mahalanobis"
        assert GMLFM_DNN(ds).transform_kind == "dnn"

    def test_no_weight_has_no_h(self, ds):
        model = GMLFM(ds, use_weight=False)
        assert model.h is None

    def test_parameter_counts_differ_by_transform(self, ds):
        k = 8
        base = GMLFM(ds, k=k, transform="identity").num_parameters()
        md = GMLFM(ds, k=k, transform="mahalanobis").num_parameters()
        dnn = GMLFM(ds, k=k, transform="dnn", n_layers=2).num_parameters()
        assert md == base + k * k
        assert dnn == base + 2 * (k * k + k)


class TestForward:
    def test_output_shape(self, ds):
        model = GMLFM_MD(ds, k=8, rng=np.random.default_rng(0))
        scores = model.score(ds.users[:9], ds.items[:9])
        assert scores.shape == (9,)

    def test_naive_equals_efficient_md(self, ds):
        seed = np.random.default_rng
        a = GMLFM(ds, k=8, transform="mahalanobis", mode="naive", rng=seed(3))
        b = GMLFM(ds, k=8, transform="mahalanobis", mode="efficient", rng=seed(3))
        sa = a.predict(ds.users[:20], ds.items[:20])
        sb = b.predict(ds.users[:20], ds.items[:20])
        np.testing.assert_allclose(sa, sb, atol=1e-10)

    def test_naive_equals_efficient_dnn(self, ds):
        seed = np.random.default_rng
        a = GMLFM(ds, k=8, transform="dnn", n_layers=2, mode="naive", rng=seed(4))
        b = GMLFM(ds, k=8, transform="dnn", n_layers=2, mode="efficient", rng=seed(4))
        sa = a.predict(ds.users[:20], ds.items[:20])
        sb = b.predict(ds.users[:20], ds.items[:20])
        np.testing.assert_allclose(sa, sb, atol=1e-10)

    def test_naive_equals_efficient_unweighted(self, ds):
        seed = np.random.default_rng
        a = GMLFM(ds, k=8, use_weight=False, mode="naive", rng=seed(5))
        b = GMLFM(ds, k=8, use_weight=False, mode="efficient", rng=seed(5))
        sa = a.predict(ds.users[:20], ds.items[:20])
        sb = b.predict(ds.users[:20], ds.items[:20])
        np.testing.assert_allclose(sa, sb, atol=1e-10)

    def test_predict_deterministic_in_eval(self, ds):
        model = GMLFM_DNN(ds, k=8, dropout=0.5, rng=np.random.default_rng(0))
        a = model.predict(ds.users[:10], ds.items[:10])
        b = model.predict(ds.users[:10], ds.items[:10])
        np.testing.assert_array_equal(a, b)

    def test_gradients_reach_all_parameters(self, ds):
        model = GMLFM_MD(ds, k=4, rng=np.random.default_rng(0))
        loss = (model.score(ds.users[:16], ds.items[:16]) ** 2).sum()
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name
            assert np.any(param.grad != 0) or param.size == 0, name


class TestTheoreticalRelations:
    def test_euclidean_special_case_of_mahalanobis(self, ds):
        """Setting M = I (L = I) recovers the Euclidean distance (Sec. 3.2.1)."""
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        md = GMLFM(ds, k=8, transform="mahalanobis", rng=rng_a)
        eu = GMLFM(ds, k=8, transform="identity", rng=rng_b)
        # Force L to the exact identity and align the other parameters.
        md.transform.L.data[...] = np.eye(8)
        eu.embeddings.weight.data[...] = md.embeddings.weight.data
        eu.linear.weight.data[...] = md.linear.weight.data
        eu.h.data[...] = md.h.data
        np.testing.assert_allclose(
            md.predict(ds.users[:15], ds.items[:15]),
            eu.predict(ds.users[:15], ds.items[:15]),
            atol=1e-12,
        )

    def test_dnn_identity_layers_recover_euclidean(self, ds):
        """Identity weights + zero bias + identity activation = Euclidean
        (the paper's remark after Eq. 8)."""
        from repro.autograd import nn as ag_nn
        rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
        dnn = GMLFM(ds, k=6, transform="dnn", n_layers=1, activation="identity",
                    rng=rng_a)
        eu = GMLFM(ds, k=6, transform="identity", rng=rng_b)
        linear_layer = dnn.transform.mlp._list[0]
        assert isinstance(linear_layer, ag_nn.Linear)
        linear_layer.weight.data[...] = np.eye(6)
        linear_layer.bias.data[...] = 0.0
        eu.embeddings.weight.data[...] = dnn.embeddings.weight.data
        eu.linear.weight.data[...] = dnn.linear.weight.data
        eu.h.data[...] = dnn.h.data
        np.testing.assert_allclose(
            dnn.predict(ds.users[:15], ds.items[:15]),
            eu.predict(ds.users[:15], ds.items[:15]),
            atol=1e-12,
        )

    def test_generalizes_vanilla_fm(self, ds):
        """Section 3.6: with w_ij = 1, D = Euclidean and ‖v_i‖² = 1, GML-FM's
        interaction equals a constant-affine function of the FM's:

            Σ (v_i − v_j)² x_i x_j = −2 Σ ⟨v_i,v_j⟩ x_i x_j + 2 Σ x_i x_j
        """
        rng = np.random.default_rng(11)
        gml = GMLFM(ds, k=6, transform="identity", use_weight=False,
                    mode="naive", rng=np.random.default_rng(12))
        fm = FactorizationMachine(ds, k=6, rng=np.random.default_rng(12))

        # Shared, unit-norm embeddings; zero the first-order terms so only
        # the pairwise interactions remain.
        emb = rng.normal(size=gml.embeddings.weight.shape)
        emb /= np.linalg.norm(emb, axis=1, keepdims=True)
        for model in (gml, fm):
            model.embeddings.weight.data[...] = emb
            model.linear.weight.data[...] = 0.0
            model.bias.data[...] = 0.0

        users, items = ds.users[:25], ds.items[:25]
        gml_scores = gml.predict(users, items)
        fm_scores = fm.predict(users, items)

        idx, val = ds.encode(users, items)
        left, right = np.triu_indices(val.shape[1], k=1)
        pair_sum = (val[:, left] * val[:, right]).sum(axis=1)

        np.testing.assert_allclose(
            gml_scores, -2.0 * fm_scores + 2.0 * pair_sum, atol=1e-10
        )

    def test_item_embeddings_accessor(self, ds):
        model = GMLFM_MD(ds, k=5, rng=np.random.default_rng(0))
        offset = ds.feature_space.offset("item")
        vectors = model.item_embeddings(np.array([0, 3]), offset)
        np.testing.assert_allclose(
            vectors, model.embeddings.weight.data[[offset, offset + 3]]
        )


class TestDistanceVariants:
    @pytest.mark.parametrize("distance", ["manhattan", "chebyshev", "cosine"])
    def test_variants_forward(self, ds, distance):
        model = GMLFM(ds, k=6, transform="dnn", n_layers=1, distance=distance,
                      mode="naive", rng=np.random.default_rng(0))
        scores = model.predict(ds.users[:10], ds.items[:10])
        assert np.all(np.isfinite(scores))

    @pytest.mark.parametrize("distance", ["manhattan", "cosine"])
    def test_variants_trainable(self, ds, distance):
        model = GMLFM(ds, k=6, transform="dnn", n_layers=1, distance=distance,
                      mode="naive", rng=np.random.default_rng(0))
        loss = (model.score(ds.users[:16], ds.items[:16]) ** 2).mean()
        loss.backward()
        assert model.h.grad is not None
