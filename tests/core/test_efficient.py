"""The paper's central derivation: naive Eq. 9 == closed form Eqs. 10–11.

These tests validate the simplification exactly — values *and*
gradients — for the Mahalanobis, DNN and identity transforms, including
hypothesis-generated inputs with zero values (padding) and duplicate
feature vectors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.tensor import Tensor
from repro.core.distances import (
    DNNTransform,
    MahalanobisTransform,
    squared_euclidean_distance,
)
from repro.core.efficient import (
    pairwise_interaction_efficient,
    pairwise_interaction_naive,
    pairwise_interaction_unweighted_efficient,
)


def _inputs(batch=4, width=6, k=5, seed=0, with_zeros=True):
    rng = np.random.default_rng(seed)
    v = Tensor(rng.normal(size=(batch, width, k)), requires_grad=True)
    x_data = rng.normal(size=(batch, width))
    if with_zeros:
        x_data[rng.random((batch, width)) < 0.3] = 0.0
    x = Tensor(x_data)
    h = Tensor(rng.normal(size=(k,)), requires_grad=True)
    return v, x, h


class TestEquivalenceValues:
    def test_identity_transform(self):
        v, x, h = _inputs()
        naive = pairwise_interaction_naive(v, v, x, h, squared_euclidean_distance)
        efficient = pairwise_interaction_efficient(v, v, x, h)
        np.testing.assert_allclose(naive.data, efficient.data, atol=1e-10)

    def test_mahalanobis_transform(self):
        v, x, h = _inputs(seed=1)
        t = MahalanobisTransform(5, rng=np.random.default_rng(2), noise=0.4)
        v_hat = t(v)
        naive = pairwise_interaction_naive(v, v_hat, x, h, squared_euclidean_distance)
        efficient = pairwise_interaction_efficient(v, v_hat, x, h)
        np.testing.assert_allclose(naive.data, efficient.data, atol=1e-10)

    def test_dnn_transform(self):
        v, x, h = _inputs(seed=2)
        t = DNNTransform(5, n_layers=2, rng=np.random.default_rng(3))
        v_hat = t(v)
        naive = pairwise_interaction_naive(v, v_hat, x, h, squared_euclidean_distance)
        efficient = pairwise_interaction_efficient(v, v_hat, x, h)
        np.testing.assert_allclose(naive.data, efficient.data, atol=1e-10)

    def test_unweighted_form(self):
        v, x, _h = _inputs(seed=3)
        naive = pairwise_interaction_naive(v, v, x, None, squared_euclidean_distance)
        efficient = pairwise_interaction_unweighted_efficient(v, x)
        np.testing.assert_allclose(naive.data, efficient.data, atol=1e-10)

    def test_duplicate_vectors_contribute_zero(self):
        # D(v, v) = 0, so duplicated features must not change the sum.
        rng = np.random.default_rng(4)
        base = rng.normal(size=(2, 3, 4))
        v_dup = np.concatenate([base, base[:, :1, :]], axis=1)  # repeat slot 0
        x_base = np.abs(rng.normal(size=(2, 3)))
        h = Tensor(rng.normal(size=(4,)))

        # With the duplicate's value moved onto the original slot, the
        # weighted pairwise sums agree (the duplicate only pairs with
        # others identically).
        v1, x1 = Tensor(base), Tensor(x_base)
        x_dup = np.concatenate([x_base, x_base[:, :1]], axis=1)
        x_dup2 = x_dup.copy()
        x_dup2[:, 0] = 0.0  # zero the original; duplicate carries value
        v2, x2 = Tensor(v_dup), Tensor(x_dup2)
        f1 = pairwise_interaction_efficient(v1, v1, x1, h)
        f2 = pairwise_interaction_efficient(v2, v2, x2, h)
        np.testing.assert_allclose(f1.data, f2.data, atol=1e-10)

    def test_zero_values_kill_all_interactions(self):
        v, _x, h = _inputs()
        x = Tensor(np.zeros((4, 6)))
        out = pairwise_interaction_efficient(v, v, x, h)
        np.testing.assert_allclose(out.data, 0.0, atol=1e-12)

    def test_single_active_feature_no_interaction(self):
        rng = np.random.default_rng(5)
        v = Tensor(rng.normal(size=(3, 5, 4)))
        x_data = np.zeros((3, 5))
        x_data[:, 2] = 1.0
        x = Tensor(x_data)
        h = Tensor(rng.normal(size=(4,)))
        out = pairwise_interaction_efficient(v, v, x, h)
        np.testing.assert_allclose(out.data, 0.0, atol=1e-10)


class TestEquivalenceGradients:
    def _grads(self, fn, v, x, h):
        v.zero_grad()
        if h is not None:
            h.zero_grad()
        out = fn().sum()
        out.backward()
        return v.grad.copy(), None if h is None else h.grad.copy()

    def test_gradients_match_identity(self):
        v, x, h = _inputs(seed=6)
        h.requires_grad = True
        gv_naive, gh_naive = self._grads(
            lambda: pairwise_interaction_naive(v, v, x, h, squared_euclidean_distance),
            v, x, h,
        )
        gv_eff, gh_eff = self._grads(
            lambda: pairwise_interaction_efficient(v, v, x, h), v, x, h
        )
        np.testing.assert_allclose(gv_naive, gv_eff, atol=1e-9)
        np.testing.assert_allclose(gh_naive, gh_eff, atol=1e-9)

    def test_gradients_match_through_mahalanobis(self):
        v, x, h = _inputs(seed=7)
        t = MahalanobisTransform(5, rng=np.random.default_rng(8), noise=0.3)

        def run(fn):
            v.zero_grad()
            t.L.zero_grad()
            fn().sum().backward()
            return v.grad.copy(), t.L.grad.copy()

        gv_n, gl_n = run(lambda: pairwise_interaction_naive(
            v, t(v), x, h, squared_euclidean_distance))
        gv_e, gl_e = run(lambda: pairwise_interaction_efficient(v, t(v), x, h))
        np.testing.assert_allclose(gv_n, gv_e, atol=1e-9)
        np.testing.assert_allclose(gl_n, gl_e, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(1, 4),
    width=st.integers(2, 7),
    k=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_equivalence_property(batch, width, k, seed):
    """Naive Eq. 9 == Eqs. 10–11 for arbitrary shapes and values."""
    rng = np.random.default_rng(seed)
    v = Tensor(rng.normal(size=(batch, width, k)))
    x_data = rng.normal(size=(batch, width))
    x_data[rng.random((batch, width)) < 0.25] = 0.0
    x = Tensor(x_data)
    h = Tensor(rng.normal(size=(k,)))
    naive = pairwise_interaction_naive(v, v, x, h, squared_euclidean_distance)
    efficient = pairwise_interaction_efficient(v, v, x, h)
    np.testing.assert_allclose(naive.data, efficient.data, atol=1e-8, rtol=1e-8)


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(1, 3),
    width=st.integers(2, 6),
    k=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_unweighted_equivalence_property(batch, width, k, seed):
    rng = np.random.default_rng(seed)
    v = Tensor(rng.normal(size=(batch, width, k)))
    x = Tensor(rng.normal(size=(batch, width)))
    naive = pairwise_interaction_naive(v, v, x, None, squared_euclidean_distance)
    efficient = pairwise_interaction_unweighted_efficient(v, x)
    np.testing.assert_allclose(naive.data, efficient.data, atol=1e-8, rtol=1e-8)


class TestComplexityScaling:
    def test_efficient_cost_grows_linearly_with_width(self):
        """The closed form touches O(W) pair terms, the naive form O(W²).

        We check operation-count scaling indirectly through timing at two
        widths; the ratio for the naive form must grow markedly faster.
        This is the paper's complexity claim at test scale (the full
        sweep lives in benchmarks/test_efficiency.py).
        """
        import time

        def measure(fn, repeat=3):
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        rng = np.random.default_rng(0)
        k = 8
        times = {}
        for width in (32, 128):
            v = Tensor(rng.normal(size=(4, width, k)))
            x = Tensor(rng.normal(size=(4, width)))
            h = Tensor(rng.normal(size=(k,)))
            times[("naive", width)] = measure(
                lambda: pairwise_interaction_naive(
                    v, v, x, h, squared_euclidean_distance)
            )
            times[("efficient", width)] = measure(
                lambda: pairwise_interaction_efficient(v, v, x, h)
            )
        naive_ratio = times[("naive", 128)] / times[("naive", 32)]
        efficient_ratio = times[("efficient", 128)] / times[("efficient", 32)]
        # 4x width: naive work grows ~16x, efficient ~4x.  Allow slack.
        assert naive_ratio > 2.0 * efficient_ratio
