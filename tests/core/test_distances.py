"""Tests for transforms and distance functions (Sections 3.2, 3.5)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.distances import (
    DISTANCES,
    DNNTransform,
    IdentityTransform,
    MahalanobisTransform,
    chebyshev_distance,
    cosine_distance,
    manhattan_distance,
    minkowski_distance,
    squared_euclidean_distance,
)
from tests.helpers import assert_grad_matches


def _pair(shape=(6, 4), seed=0):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=shape), requires_grad=True)
    b = Tensor(rng.normal(size=shape), requires_grad=True)
    return a, b


class TestTransforms:
    def test_identity_is_noop(self):
        a, _ = _pair()
        assert IdentityTransform()(a) is a

    def test_mahalanobis_initializes_near_identity(self):
        t = MahalanobisTransform(4, rng=np.random.default_rng(0), noise=0.0)
        v = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        np.testing.assert_allclose(t(v).data, v.data)

    def test_mahalanobis_metric_matrix_is_psd(self):
        t = MahalanobisTransform(6, rng=np.random.default_rng(0), noise=0.5)
        # Even with large random perturbations, M = LᵀL stays PSD.
        t.L.data += np.random.default_rng(1).normal(0, 1.0, size=(6, 6))
        eigenvalues = np.linalg.eigvalsh(t.metric_matrix())
        assert np.all(eigenvalues >= -1e-10)

    def test_mahalanobis_distance_equals_metric_form(self):
        # ‖L(a-b)‖² must equal (a-b)ᵀ M (a-b) with M = LᵀL (Eq. 4–6).
        t = MahalanobisTransform(4, rng=np.random.default_rng(0), noise=0.3)
        a, b = _pair(shape=(5, 4), seed=2)
        d_transform = squared_euclidean_distance(t(a), t(b)).data
        m = t.metric_matrix()
        diff = a.data - b.data
        d_metric = np.einsum("ij,jk,ik->i", diff, m, diff)
        np.testing.assert_allclose(d_transform, d_metric, atol=1e-10)

    def test_mahalanobis_gradient(self):
        t = MahalanobisTransform(3, rng=np.random.default_rng(0))
        a, b = _pair(shape=(4, 3), seed=1)
        assert_grad_matches(
            lambda: squared_euclidean_distance(t(a), t(b)).sum(), t.L
        )

    def test_dnn_zero_layers_is_identity(self):
        t = DNNTransform(4, n_layers=0)
        v = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        assert t(v) is v

    def test_dnn_output_shape_preserved(self):
        t = DNNTransform(4, n_layers=2, rng=np.random.default_rng(0))
        v = Tensor(np.random.default_rng(1).normal(size=(3, 5, 4)))
        assert t(v).shape == (3, 5, 4)

    def test_dnn_tanh_bounded(self):
        t = DNNTransform(4, n_layers=1, activation="tanh",
                         rng=np.random.default_rng(0))
        v = Tensor(np.random.default_rng(1).normal(0, 100, size=(10, 4)))
        out = t(v).data
        assert np.all(np.abs(out) <= 1.0)

    def test_dnn_rejects_negative_layers(self):
        with pytest.raises(ValueError):
            DNNTransform(4, n_layers=-1)

    def test_dnn_parameter_count(self):
        t = DNNTransform(4, n_layers=2, rng=np.random.default_rng(0))
        assert t.num_parameters() == 2 * (4 * 4 + 4)


class TestDistances:
    def test_squared_euclidean_matches_numpy(self):
        a, b = _pair()
        expected = ((a.data - b.data) ** 2).sum(axis=-1)
        np.testing.assert_allclose(squared_euclidean_distance(a, b).data, expected)

    def test_manhattan_matches_numpy(self):
        a, b = _pair()
        expected = np.abs(a.data - b.data).sum(axis=-1)
        np.testing.assert_allclose(manhattan_distance(a, b).data, expected)

    def test_chebyshev_matches_numpy(self):
        a, b = _pair()
        expected = np.abs(a.data - b.data).max(axis=-1)
        np.testing.assert_allclose(chebyshev_distance(a, b).data, expected)

    def test_self_distance_is_zero(self):
        a, _ = _pair()
        for name in ("euclidean", "manhattan", "chebyshev"):
            np.testing.assert_allclose(DISTANCES[name](a, a).data, 0.0, atol=1e-12)

    def test_symmetry(self):
        a, b = _pair()
        for name in ("euclidean", "manhattan", "chebyshev", "cosine"):
            np.testing.assert_allclose(
                DISTANCES[name](a, b).data, DISTANCES[name](b, a).data, atol=1e-12
            )

    def test_non_negative(self):
        a, b = _pair()
        for name in ("euclidean", "manhattan", "chebyshev"):
            assert np.all(DISTANCES[name](a, b).data >= 0.0)

    def test_triangle_inequality_euclidean_sqrt(self):
        # The *square root* of the squared distance obeys the triangle
        # inequality (the paper's footnote 2).
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(20, 5)))
        y = Tensor(rng.normal(size=(20, 5)))
        z = Tensor(rng.normal(size=(20, 5)))
        d_xy = np.sqrt(squared_euclidean_distance(x, y).data)
        d_yz = np.sqrt(squared_euclidean_distance(y, z).data)
        d_xz = np.sqrt(squared_euclidean_distance(x, z).data)
        assert np.all(d_yz <= d_xy + d_xz + 1e-12)

    def test_triangle_inequality_manhattan(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(20, 5)))
        y = Tensor(rng.normal(size=(20, 5)))
        z = Tensor(rng.normal(size=(20, 5)))
        d_xy = manhattan_distance(x, y).data
        d_yz = manhattan_distance(y, z).data
        d_xz = manhattan_distance(x, z).data
        assert np.all(d_yz <= d_xy + d_xz + 1e-12)

    def test_minkowski_special_cases(self):
        a, b = _pair()
        np.testing.assert_allclose(
            minkowski_distance(a, b, 1.0).data, manhattan_distance(a, b).data
        )
        np.testing.assert_allclose(
            minkowski_distance(a, b, 2.0).data,
            np.sqrt(squared_euclidean_distance(a, b).data),
        )

    def test_minkowski_large_p_approaches_chebyshev(self):
        a, b = _pair()
        approx = minkowski_distance(a, b, 64.0).data
        np.testing.assert_allclose(approx, chebyshev_distance(a, b).data, rtol=0.1)

    def test_minkowski_invalid_p(self):
        a, b = _pair()
        with pytest.raises(ValueError):
            minkowski_distance(a, b, 0.0)

    def test_cosine_bounded(self):
        a, b = _pair()
        out = cosine_distance(a, b).data
        assert np.all(out >= -1.0 - 1e-9) and np.all(out <= 1.0 + 1e-9)

    def test_cosine_self_similarity_one(self):
        a, _ = _pair()
        np.testing.assert_allclose(cosine_distance(a, a).data, 1.0, atol=1e-9)

    def test_cosine_zero_vector_stable(self):
        a = Tensor(np.zeros((2, 4)))
        b = Tensor(np.ones((2, 4)))
        assert np.all(np.isfinite(cosine_distance(a, b).data))

    def test_gradients(self):
        a, b = _pair(shape=(3, 4))
        assert_grad_matches(lambda: squared_euclidean_distance(a, b).sum(), a)
        assert_grad_matches(lambda: cosine_distance(a, b).sum(), a)
        a2 = Tensor(np.random.default_rng(5).normal(size=(3, 4)) + 0.1,
                    requires_grad=True)
        assert_grad_matches(lambda: manhattan_distance(a2, b).sum(), a2)
