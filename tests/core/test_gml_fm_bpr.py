"""GML-FM with pairwise (BPR) training — the paper's stated future work.

Section 7: "In the future, we will explore pair-wise learning technique
for GML-FM by enhancing GML-FM with the Bayesian Personalized Ranking
approach."  The building blocks already compose: GML-FM is a generic
scorer and the trainer has a BPR loop, so this module verifies the
combination works and learns.
"""

import numpy as np
import pytest

from repro.core.gml_fm import GMLFM_DNN, GMLFM_MD
from repro.data.sampling import NegativeSampler
from repro.training import TrainConfig, Trainer
from tests.helpers import make_tiny_dataset


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(n_users=20, n_items=30)


@pytest.fixture(scope="module")
def pairwise_data(ds):
    sampler = NegativeSampler(ds, seed=0)
    return sampler.build_pairwise_training_set(
        np.arange(ds.n_interactions), n_neg=3
    )


class TestBprGmlFm:
    def test_bpr_loss_decreases(self, ds, pairwise_data):
        users, positives, negatives = pairwise_data
        model = GMLFM_DNN(ds, k=8, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=15, lr=0.02, seed=0))
        result = trainer.fit_pairwise(users, positives, negatives)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_positives_ranked_above_negatives(self, ds, pairwise_data):
        users, positives, negatives = pairwise_data
        model = GMLFM_MD(ds, k=8, rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=25, lr=0.02, seed=0))
        trainer.fit_pairwise(users, positives, negatives)
        pos_scores = model.predict(users, positives)
        neg_scores = model.predict(users, negatives)
        assert (pos_scores > neg_scores).mean() > 0.7

    def test_bpr_and_pointwise_give_different_models(self, ds, pairwise_data):
        users, positives, negatives = pairwise_data
        bpr = GMLFM_DNN(ds, k=8, rng=np.random.default_rng(0))
        Trainer(bpr, TrainConfig(epochs=5, lr=0.02, seed=0)).fit_pairwise(
            users, positives, negatives
        )
        pointwise = GMLFM_DNN(ds, k=8, rng=np.random.default_rng(0))
        labels = np.ones(users.size)
        Trainer(pointwise, TrainConfig(epochs=5, lr=0.02, seed=0)).fit_pointwise(
            users, positives, labels
        )
        a = bpr.predict(ds.users[:10], ds.items[:10])
        b = pointwise.predict(ds.users[:10], ds.items[:10])
        assert not np.allclose(a, b)
