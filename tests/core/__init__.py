"""Test package."""
