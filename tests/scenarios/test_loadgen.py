"""The generalized load generator: schedule plumbing + window stats.

``zipf_users`` moved verbatim from ``tests/serving/loadgen.py`` into
the shipped package; the CRC pin below freezes its exact bytes so the
move (and any future edit) cannot silently change every load test's
request mix.  ``LoadResult.window_stats`` is checked against a
hand-computed oracle on synthetic latencies/errors.
"""

import zlib

import numpy as np
import pytest

from repro.scenarios.loadgen import LoadResult, resolve_schedule, zipf_users
from repro.scenarios.schedules import Schedule

pytestmark = pytest.mark.scenario

#: CRC-32 of ``zipf_users(1000, 5000, seed=42).tobytes()`` at the time
#: the helper graduated out of the test tree.  A mismatch means the
#: canonical load schedule changed bytes — every load/cluster benchmark
#: would silently measure a different mix.
ZIPF_1000x5000_SEED42_CRC32 = 0xE87BE7DF


class TestZipfRegression:
    def test_schedule_bytes_are_pinned(self):
        users = zipf_users(1000, 5000, seed=42)
        assert users.dtype == np.int64
        assert zlib.crc32(users.tobytes()) == ZIPF_1000x5000_SEED42_CRC32
        assert users[:8].tolist() == [295, 12, 12, 872, 279, 866, 296, 211]

    def test_shim_reexports_the_same_objects(self):
        from tests.serving import loadgen as shim

        assert shim.zipf_users is zipf_users
        assert shim.LoadResult is LoadResult
        assert shim.resolve_schedule is resolve_schedule


class TestResolveSchedule:
    def test_accepts_arrays_lists_and_schedule_objects(self):
        np.testing.assert_array_equal(resolve_schedule([3, 1, 2]),
                                      np.array([3, 1, 2]))
        users = np.array([5, 6], dtype=np.int64)
        schedule = Schedule(name="s", users=users,
                            boundaries=np.array([0, 2]))
        assert resolve_schedule(schedule) is not None
        np.testing.assert_array_equal(resolve_schedule(schedule), users)

    def test_rejects_empty_and_multidim(self):
        with pytest.raises(ValueError):
            resolve_schedule(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            resolve_schedule(np.zeros((2, 2), dtype=np.int64))


def _result():
    """8 requests, two known errors, latencies = position milliseconds."""
    latencies = np.arange(8) / 1000.0
    responses = [{"items": [1]}] * 8
    errors = [(1, 10, "boom"), (6, 11, "boom")]
    return LoadResult(latencies=latencies, responses=responses,
                      errors=errors, wall_seconds=2.0)


class TestLoadResult:
    def test_summary_and_rates(self):
        result = _result()
        assert result.n_requests == 8
        assert result.requests_per_sec == pytest.approx(4.0)
        summary = result.summary()
        assert summary["requests"] == 8
        assert summary["errors"] == 2
        assert summary["p50_ms"] == pytest.approx(3.5)
        assert summary["p50_ms"] <= summary["p99_ms"]

    def test_zero_wall_reports_zero_rate(self):
        result = LoadResult(latencies=np.zeros(3), responses=[None] * 3)
        assert result.requests_per_sec == 0.0

    def test_window_stats_oracle(self):
        result = _result()
        stats = result.window_stats(np.array([0, 4, 4, 8]))
        assert [w["requests"] for w in stats] == [4, 0, 4]
        assert [w["errors"] for w in stats] == [1, 0, 1]
        assert [w["start"] for w in stats] == [0, 4, 4]
        assert stats[0]["p50_ms"] == pytest.approx(1.5)
        assert stats[2]["p50_ms"] == pytest.approx(5.5)
        assert np.isnan(stats[1]["p50_ms"])
        assert np.isnan(stats[1]["p99_ms"])

    def test_window_stats_validation(self):
        result = _result()
        with pytest.raises(ValueError):
            result.window_stats(np.array([0]))
        with pytest.raises(ValueError):
            result.window_stats(np.array([4, 0]))
        with pytest.raises(ValueError):
            result.window_stats(np.array([0, 99]))
