"""Property tests for the chunked corpus stream (repro.scenarios.corpus).

The determinism contract under test: the consumer's chunk size only
*slices* the event stream — generation happens per fixed internal user
block — so any chunk size yields the byte-identical corpus.  Hypothesis
drives the contract over random configs; the aggregate checks use
:func:`materialize` as the set oracle for :class:`CorpusStats`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.corpus import (
    BLOCK_USERS,
    CorpusStats,
    StreamConfig,
    materialize,
    stream_corpus,
    stream_to_log,
    windowed_snapshot,
)

pytestmark = pytest.mark.scenario


@st.composite
def stream_configs(draw):
    return StreamConfig(
        n_users=draw(st.integers(1, 200)),
        n_items=draw(st.integers(2, 50)),
        seed=draw(st.integers(0, 2**16)),
        mean_events=draw(st.sampled_from([1.0, 3.0, 8.0])),
        n_clusters=draw(st.sampled_from([1, 4, 16])),
        affinity=draw(st.sampled_from([0.0, 0.7, 1.0])),
        cold_frac=draw(st.sampled_from([0.0, 0.25])),
    )


class TestChunkSizeInvariance:
    @settings(max_examples=25, deadline=None)
    @given(stream_configs(), st.sampled_from([1, 7, 64]))
    def test_any_chunk_size_yields_identical_events(self, config, chunk):
        """chunk_users in {1, 7, 64, all} -> byte-identical streams."""
        ref_users, ref_items, ref_ts = materialize(
            config, chunk_users=config.n_users)
        users, items, ts = materialize(config, chunk_users=chunk)
        np.testing.assert_array_equal(users, ref_users)
        np.testing.assert_array_equal(items, ref_items)
        np.testing.assert_array_equal(ts, ref_ts)

    def test_invariance_across_block_boundaries(self):
        """Chunk sizes straddling the internal 1024-user block."""
        config = StreamConfig(n_users=2500, n_items=40, seed=3)
        reference = materialize(config, chunk_users=config.n_users)
        for chunk in (1000, BLOCK_USERS, BLOCK_USERS + 1, 2499):
            for ref, got in zip(reference, materialize(config, chunk)):
                np.testing.assert_array_equal(got, ref)

    def test_default_chunk_is_block_sized(self):
        config = StreamConfig(n_users=2 * BLOCK_USERS + 5, n_items=20, seed=1)
        chunks = list(stream_corpus(config))
        assert [c.user_hi - c.user_lo for c in chunks] == \
            [BLOCK_USERS, BLOCK_USERS, 5]

    def test_chunks_are_user_aligned_and_sorted(self):
        config = StreamConfig(n_users=90, n_items=15, seed=2)
        cursor = 0
        for chunk in stream_corpus(config, chunk_users=17):
            assert chunk.user_lo == cursor
            cursor = chunk.user_hi
            if chunk.n_events:
                assert chunk.users.min() >= chunk.user_lo
                assert chunk.users.max() < chunk.user_hi
                assert np.all(np.diff(chunk.users) >= 0)
        assert cursor == config.n_users


class TestDeterminismAndRanges:
    def test_same_config_same_bytes_different_seed_differs(self):
        config = StreamConfig(n_users=120, n_items=30, seed=9)
        first = materialize(config)
        again = materialize(config)
        for a, b in zip(first, again):
            np.testing.assert_array_equal(a, b)
        other = materialize(StreamConfig(n_users=120, n_items=30, seed=10))
        assert not all(np.array_equal(a, b)
                       for a, b in zip(first, other))

    @settings(max_examples=25, deadline=None)
    @given(stream_configs())
    def test_ids_and_timestamps_in_range(self, config):
        users, items, ts = materialize(config)
        if users.size == 0:
            return
        assert users.min() >= 0 and users.max() < config.warm_users
        assert items.min() >= 0 and items.max() < config.n_items
        # Each user's clock ticks from a session start < horizon.
        assert ts.min() >= 0
        assert ts.max() < config.horizon + users.size

    def test_cold_users_generate_no_events(self):
        config = StreamConfig(n_users=100, n_items=20, seed=4, cold_frac=0.3)
        assert config.n_cold == 30
        np.testing.assert_array_equal(config.cold_user_ids,
                                      np.arange(70, 100))
        users, _items, _ts = materialize(config)
        assert users.size > 0
        assert not np.isin(config.cold_user_ids, users).any()

    def test_min_events_floor(self):
        config = StreamConfig(n_users=50, n_items=10, seed=0,
                              mean_events=1.0, min_events=2)
        users, _items, _ts = materialize(config)
        _uniques, counts = np.unique(users, return_counts=True)
        assert _uniques.size == 50
        assert counts.min() >= 2

    @pytest.mark.parametrize("kwargs", [
        dict(n_users=0, n_items=5),
        dict(n_users=5, n_items=0),
        dict(n_users=5, n_items=5, mean_events=0.0),
        dict(n_users=5, n_items=5, min_events=-1),
        dict(n_users=5, n_items=5, n_clusters=0),
        dict(n_users=5, n_items=5, affinity=1.5),
        dict(n_users=5, n_items=5, cold_frac=1.0),
        dict(n_users=5, n_items=5, horizon=0),
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            StreamConfig(**kwargs)

    def test_bad_chunk_users_rejected(self):
        config = StreamConfig(n_users=5, n_items=5)
        with pytest.raises(ValueError):
            next(stream_corpus(config, chunk_users=0))


class TestCorpusStatsOracle:
    @settings(max_examples=20, deadline=None)
    @given(stream_configs(), st.sampled_from([1, 13, 64]))
    def test_degree_aggregates_match_materialized_oracle(self, config, chunk):
        """Streaming aggregates == one-shot numpy over the full arrays."""
        stats = CorpusStats(config)
        for piece in stream_corpus(config, chunk_users=chunk):
            stats.update(piece)
        users, items, ts = materialize(config)

        assert stats.n_events == users.size
        np.testing.assert_array_equal(
            stats.item_degrees,
            np.bincount(items, minlength=config.n_items))
        degrees = np.bincount(users, minlength=config.n_users)
        np.testing.assert_array_equal(
            stats.user_degree_hist,
            np.bincount(degrees, minlength=stats.user_degree_hist.size))
        assert stats.n_active_users == int((degrees > 0).sum())
        if users.size:
            assert stats.min_timestamp == int(ts.min())
            assert stats.max_timestamp == int(ts.max())

    def test_summary_fields_and_chunk_tracking(self):
        config = StreamConfig(n_users=150, n_items=25, seed=7, cold_frac=0.2)
        stats = CorpusStats(config)
        for piece in stream_corpus(config, chunk_users=40):
            stats.update(piece)
        summary = stats.summary()
        assert summary["n_users"] == 150
        assert summary["n_items"] == 25
        assert summary["n_cold_users"] == 30
        assert summary["n_events"] == stats.n_events > 0
        assert summary["max_item_degree"] == int(stats.item_degrees.max())
        assert 0 < stats.max_chunk_events <= stats.n_events


class TestAdapters:
    def test_stream_to_log_holds_the_whole_corpus(self):
        config = StreamConfig(n_users=80, n_items=16, seed=5)
        log = stream_to_log(config, chunk_users=11)
        users, items, ts = materialize(config)
        assert len(log) == users.size
        snapshot = log.snapshot()
        np.testing.assert_array_equal(snapshot.users, users)
        np.testing.assert_array_equal(snapshot.items, items)
        np.testing.assert_array_equal(snapshot.timestamps, ts)

    def test_stream_to_log_max_events_truncates_at_chunk_boundary(self):
        config = StreamConfig(n_users=80, n_items=16, seed=5)
        log = stream_to_log(config, chunk_users=10, max_events=50)
        total = materialize(config)[0].size
        assert 50 <= len(log) < total

    def test_windowed_snapshot_keeps_exactly_the_newest_window(self):
        config = StreamConfig(n_users=300, n_items=30, seed=6)
        users, items, ts = materialize(config)
        window = users.size // 3
        dataset, peak = windowed_snapshot(config, window, chunk_users=37)
        # Full entity space, windowed interactions.
        assert dataset.n_users == config.n_users
        assert dataset.n_items == config.n_items
        np.testing.assert_array_equal(dataset.users, users[-window:])
        np.testing.assert_array_equal(dataset.items, items[-window:])
        np.testing.assert_array_equal(dataset.timestamps, ts[-window:])
        assert window <= peak < users.size

    def test_windowed_snapshot_window_larger_than_corpus(self):
        config = StreamConfig(n_users=40, n_items=12, seed=8)
        users, _items, _ts = materialize(config)
        dataset, peak = windowed_snapshot(config, 10 * users.size)
        assert dataset.users.size == users.size
        assert peak == users.size

    def test_windowed_snapshot_rejects_bad_window(self):
        with pytest.raises(ValueError):
            windowed_snapshot(StreamConfig(n_users=5, n_items=5), 0)
