"""Scenario engine end-to-end at smoke scale, plus the CLI surface.

Every scenario runner executes here with tiny parameters — a real HTTP
server, a real registry model, the real gate logic — so the capacity
benchmarks in ``benchmarks/`` only re-run what is already known to work
at full scale.  The CLI tests drive ``repro scenario`` through the root
parser, and the bench-report test pins that a failed scenario gate
fails ``repro bench report``.
"""

import json
import os

import pytest

from repro.cli import main
from repro.scenarios.engine import (
    SCENARIOS,
    list_scenarios,
    peak_rss_mb,
    run_scenario,
)

pytestmark = [pytest.mark.scenario, pytest.mark.serving]

#: Smoke-scale overrides: small corpora, few requests, single-core-safe
#: throughput floors.  The RSS ceiling stays loose — in-process runs
#: inherit the whole test session's high-water mark.
TINY = {
    "cold-start-surge": dict(scale=0.1, n_requests=60, n_threads=2,
                             min_req_per_sec=0.5),
    "session-traffic": dict(scale=0.15, n_sessions=6, session_len=4,
                            min_req_per_sec=0.5),
    "catalog-churn": dict(n_users=120, n_items=80, churn_rounds=2,
                          requests_per_round=20, events_per_round=8,
                          min_req_per_sec=0.5),
    "flash-crowd": dict(n_users=150, n_items=80, n_requests=60,
                        min_req_per_sec=0.5),
    "diurnal": dict(n_users=120, n_items=80, n_requests=60,
                    min_req_per_sec=0.5),
    "million-user": dict(n_users=3000, n_items=400, window_events=8000,
                         sample_users=16, min_gen_events_per_sec=1.0,
                         min_serve_users_per_sec=0.5,
                         max_peak_rss_mb=100000.0),
}


class TestRegistry:
    def test_every_scenario_is_listed_with_a_summary(self):
        specs = list_scenarios()
        assert [spec.name for spec in specs] == list(SCENARIOS)
        assert sorted(SCENARIOS) == sorted(TINY)
        for spec in specs:
            assert spec.summary
            assert callable(spec.runner)

    def test_unknown_scenario_raises_keyerror(self):
        with pytest.raises(KeyError, match="no-such-scenario"):
            run_scenario("no-such-scenario")

    def test_peak_rss_is_measured_on_this_platform(self):
        assert peak_rss_mb() > 0.0


def _run(name):
    record = run_scenario(name, **TINY[name])
    assert record["benchmark"] == "scenario_capacity"
    assert record["scenario"] == name
    assert record["gate"]
    assert record["checks"]
    failed = {check: ok for check, ok in record["checks"].items() if not ok}
    assert record["gate_passed"], failed
    return record


class TestScenarioRuns:
    def test_cold_start_surge(self):
        record = _run("cold-start-surge")
        assert record["model"] == "MAMO"
        assert record["cold_requests"] > 0
        assert record["errors"] == 0
        assert len(record["windows"]) == 8

    def test_session_traffic(self):
        record = _run("session-traffic")
        assert record["model"] == "TransFM"
        assert record["folded_in"] == record["sessions"] == 6
        assert record["requests"] == 24

    def test_catalog_churn(self):
        record = _run("catalog-churn")
        assert record["model"] == "BPR-MF"
        assert record["ann"] is True
        assert record["folded_rounds"] == 2
        assert len(record["windows"]) == 2

    def test_flash_crowd(self):
        record = _run("flash-crowd")
        assert record["cache_hit_rate"] > 0.0

    def test_diurnal(self):
        record = _run("diurnal")
        assert record["peak_window_requests"] > \
            record["trough_window_requests"]

    def test_million_user_smoke(self):
        record = _run("million-user")
        assert record["n_users"] == 3000
        assert record["n_events"] > 0
        assert record["n_active_users"] > 0
        assert record["artifact_mb"] > 0.0
        assert record["peak_buffered_events"] < record["n_events"]

    def test_scenarios_are_deterministic_where_gated(self):
        """Same seed -> identical corpus/schedule-derived record fields."""
        first = run_scenario("diurnal", **TINY["diurnal"])
        again = run_scenario("diurnal", **TINY["diurnal"])
        for key in ("requests", "errors", "peak_window_requests",
                    "trough_window_requests", "gate"):
            assert first[key] == again[key]


class TestScenarioCLI:
    def test_list_prints_every_scenario(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_human_output_exits_zero_on_pass(self, capsys):
        argv = ["scenario", "run", "diurnal"]
        for key, value in TINY["diurnal"].items():
            argv += ["--set", f"{key}={value}"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "scenario diurnal: PASS" in out
        assert "[ok]" in out and "[FAIL]" not in out

    def test_run_json_output_is_the_record(self, capsys):
        argv = ["scenario", "run", "flash-crowd", "--json"]
        for key, value in TINY["flash-crowd"].items():
            argv += ["--set", f"{key}={value}"]
        assert main(argv) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["scenario"] == "flash-crowd"
        assert record["gate_passed"] is True

    def test_failed_gate_exits_nonzero(self, capsys):
        argv = ["scenario", "run", "diurnal",
                "--set", "min_req_per_sec=1e9"]
        for key, value in TINY["diurnal"].items():
            if key != "min_req_per_sec":
                argv += ["--set", f"{key}={value}"]
        assert main(argv) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_unknown_scenario_and_bad_overrides_are_cli_errors(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "run", "nope"])
        with pytest.raises(SystemExit, match="bad override"):
            main(["scenario", "run", "diurnal", "--set", "nonsense=1"])
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            main(["scenario", "run", "diurnal", "--set", "oops"])


class TestBenchReportGate:
    def _report(self, tmp_path, record, capsys):
        path = os.path.join(tmp_path, "scenario_capacity.json")
        with open(path, "w") as fh:
            json.dump([record], fh)
        code = main(["bench", "report", "--results-dir", str(tmp_path)])
        return code, capsys.readouterr().out

    def test_failed_scenario_gate_fails_the_report(self, tmp_path, capsys):
        record = {"benchmark": "scenario_capacity", "scenario": "diurnal",
                  "gate": "zero errors", "gate_passed": False,
                  "checks": {"zero errors": False}}
        code, out = self._report(tmp_path, record, capsys)
        assert code == 1
        assert "FAIL" in out

    def test_passed_scenario_gate_passes_the_report(self, tmp_path, capsys):
        record = {"benchmark": "scenario_capacity", "scenario": "diurnal",
                  "gate": "zero errors", "gate_passed": True,
                  "checks": {"zero errors": True}}
        code, out = self._report(tmp_path, record, capsys)
        assert code == 0
        assert "scenario_capacity" in out
