"""Property tests for the arrival-schedule builders.

Every builder is a pure function of its arguments plus a seed, so the
tests pin determinism, id ranges and boundary well-formedness for each
shape, then the shape-specific structure: the flash-crowd burst really
concentrates, diurnal volume really varies, the cold-start surge really
shifts onto cold ids, sessions really repeat their owner.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import schedules

pytestmark = pytest.mark.scenario

BUILDERS = {
    "flash-crowd": lambda n, r, s: schedules.flash_crowd(n, r, seed=s),
    "diurnal": lambda n, r, s: schedules.diurnal(n, r, seed=s),
    "cold-start-surge": lambda n, r, s: schedules.cold_start_surge(
        n, np.arange(max(1, n // 5)), r, seed=s),
    "sessions": lambda n, r, s: schedules.sessions(n, max(1, r // 4), 4,
                                                   seed=s),
}


class TestScheduleWellFormedness:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(sorted(BUILDERS)), st.integers(5, 200),
           st.integers(8, 200), st.integers(0, 2**16))
    def test_deterministic_in_range_well_bounded(self, name, n_users,
                                                 n_requests, seed):
        build = BUILDERS[name]
        schedule = build(n_users, n_requests, seed)
        again = build(n_users, n_requests, seed)
        np.testing.assert_array_equal(schedule.users, again.users)
        np.testing.assert_array_equal(schedule.boundaries, again.boundaries)

        assert schedule.users.dtype == np.int64
        assert schedule.users.min() >= 0
        assert schedule.users.max() < n_users
        bounds = schedule.boundaries
        assert bounds[0] == 0 and bounds[-1] == schedule.n_requests
        assert np.all(np.diff(bounds) >= 0)
        assert schedule.n_windows == bounds.size - 1

    def test_seed_actually_matters(self):
        for name, build in sorted(BUILDERS.items()):
            a = build(100, 160, 0).users
            b = build(100, 160, 1).users
            assert not np.array_equal(a, b), name


class TestZipfAndUniform:
    def test_zipf_is_skewed_uniform_is_not(self):
        zipf = schedules.zipf_users(200, 4000, seed=0)
        uniform = schedules.uniform_users(200, 4000, seed=0)
        assert np.bincount(zipf).max() > 3 * np.bincount(uniform).max()

    def test_validation(self):
        for builder in (schedules.zipf_users, schedules.uniform_users):
            with pytest.raises(ValueError):
                builder(0, 10)
            with pytest.raises(ValueError):
                builder(10, 0)
        with pytest.raises(ValueError):
            schedules.even_windows(0, 4)

    def test_even_windows_cover_the_stream_evenly(self):
        bounds = schedules.even_windows(100, 8)
        assert bounds[0] == 0 and bounds[-1] == 100
        sizes = np.diff(bounds)
        assert sizes.max() - sizes.min() <= 1
        # More windows than requests degrades gracefully.
        assert schedules.even_windows(3, 10).size == 4


class TestFlashCrowd:
    def test_burst_concentrates_on_a_tiny_hot_set(self):
        schedule = schedules.flash_crowd(500, 800, seed=0, hot_users=4,
                                         burst_start=0.5, burst_frac=0.25,
                                         burst_share=1.0)
        lo, hi = 400, 600
        burst = schedule.users[lo:hi]
        outside = np.concatenate((schedule.users[:lo], schedule.users[hi:]))
        assert np.unique(burst).size <= 4
        assert np.unique(outside).size > 4

    def test_validation(self):
        with pytest.raises(ValueError):
            schedules.flash_crowd(10, 10, burst_frac=0.0)
        with pytest.raises(ValueError):
            schedules.flash_crowd(10, 10, burst_share=1.5)


class TestDiurnal:
    def test_volume_follows_the_cosine(self):
        schedule = schedules.diurnal(100, 640, seed=0, n_windows=8,
                                     trough=0.25)
        sizes = np.diff(schedule.boundaries)
        assert int(sizes.sum()) == 640
        assert sizes.min() >= 1
        assert sizes.max() > 2 * sizes.min()
        # Peak mid-cycle (the cosine trough is at window 0).
        assert int(np.argmax(sizes)) in (3, 4, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            schedules.diurnal(10, 10, trough=0.0)


class TestColdStartSurge:
    def test_warm_before_cold_after(self):
        cold = np.arange(80, 100)
        schedule = schedules.cold_start_surge(100, cold, 400, seed=0,
                                              surge_start=0.5,
                                              surge_share=1.0)
        pre, post = schedule.users[:200], schedule.users[200:]
        assert not np.isin(pre, cold).any()
        assert np.isin(post, cold).all()

    def test_exclude_drops_users_from_the_warm_pool(self):
        cold = np.arange(90, 100)
        exclude = np.arange(0, 40)
        schedule = schedules.cold_start_surge(100, cold, 400, seed=0,
                                              exclude=exclude)
        warm_mask = ~np.isin(schedule.users, cold)
        assert not np.isin(schedule.users[warm_mask], exclude).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            schedules.cold_start_surge(10, np.array([], dtype=np.int64), 10)
        with pytest.raises(ValueError):
            schedules.cold_start_surge(10, np.arange(10), 10)
        with pytest.raises(ValueError):
            schedules.cold_start_surge(10, np.arange(5), 10, surge_share=2.0)


class TestSessions:
    def test_runs_of_same_user_with_session_boundaries(self):
        schedule = schedules.sessions(50, 12, 6, seed=0)
        assert schedule.n_requests == 72
        users = schedule.users.reshape(12, 6)
        assert (users == users[:, :1]).all()
        np.testing.assert_array_equal(schedule.boundaries,
                                      np.arange(13) * 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            schedules.sessions(10, 0, 5)
        with pytest.raises(ValueError):
            schedules.sessions(10, 5, 0)
