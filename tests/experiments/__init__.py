"""Test package."""
