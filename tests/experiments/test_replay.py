"""Prequential replay sweeps: end-to-end determinism and shape."""

import numpy as np
import pytest

from repro.experiments.configs import ExperimentScale
from repro.experiments.streaming import format_replay, run_replay
from tests.helpers import make_tiny_dataset

pytestmark = pytest.mark.streaming

#: Tiny scale so a full warmup + stream runs in well under a second.
TINY = ExperimentScale(name="tiny", epochs=2, k=4, dataset_scale=0.1,
                       n_candidates=8, n_seeds=1)


def _run(**kwargs):
    defaults = dict(
        model_name="MF",
        dataset=make_tiny_dataset(seed=0),
        scale=TINY,
        seed=0,
        warmup_frac=0.7,
        batch_size=4,
        n_candidates=6,
        top_k=3,
        window=8,
    )
    defaults.update(kwargs)
    return run_replay(**defaults)


def test_replay_runs_end_to_end():
    result = _run()
    dataset = make_tiny_dataset(seed=0)
    assert result.warmup_events + result.stream_events == dataset.n_interactions
    assert result.stream_events > 0
    assert 0.0 <= result.hr <= 1.0
    assert 0.0 <= result.ndcg <= result.hr + 1e-12
    assert result.windows
    assert result.windows[-1].events_seen == result.stream_events
    assert result.events_per_sec > 0


def test_replay_is_deterministic():
    a, b = _run(), _run()
    assert a.hr == b.hr and a.ndcg == b.ndcg
    assert [vars(w) for w in a.windows] == [vars(w) for w in b.windows]


def test_replay_seed_changes_metrics():
    a = _run(seed=0)
    b = _run(seed=1)
    assert (a.hr, a.ndcg) != (b.hr, b.ndcg)


def test_replay_windows_aggregate_to_overall():
    result = _run(window=4)
    weights = np.diff([0] + [w.events_seen for w in result.windows])
    hr = float(np.average([w.hr for w in result.windows], weights=weights))
    ndcg = float(np.average([w.ndcg for w in result.windows], weights=weights))
    assert hr == pytest.approx(result.hr)
    assert ndcg == pytest.approx(result.ndcg)


def test_replay_with_refresh_policy():
    result = _run(refresh_every=8, refresh_epochs=1)
    assert result.refreshes >= 1


def test_refresh_every_merges_into_an_explicit_config():
    from repro.training.online import OnlineConfig

    result = _run(online_config=OnlineConfig(lr=0.01, seed=0),
                  refresh_every=8, refresh_epochs=1)
    assert result.refreshes >= 1
    with pytest.raises(ValueError, match="conflicts"):
        _run(online_config=OnlineConfig(seed=0, refresh_every=4),
             refresh_every=8)


def test_replay_pairwise_model():
    result = _run(model_name="BPR-MF")
    assert result.stream_events > 0


def test_replay_rejects_bad_arguments():
    with pytest.raises(ValueError, match="warmup_frac"):
        _run(warmup_frac=0.0)
    with pytest.raises(ValueError, match="batch_size"):
        _run(batch_size=0)


def test_eval_candidates_never_contain_the_positive():
    """The sampler only knows warmup membership, so the event's own
    (still-unseen) item could be drawn as a negative — it must be
    redrawn or the positive can never win its own row."""
    from repro.data.sampling import NegativeSampler
    from repro.experiments.streaming import _sample_eval_candidates

    dataset = make_tiny_dataset(seed=0)
    membership = dataset.membership()
    users = dataset.users[:20]
    # Each event's item is the user's first *uninteracted* item — the
    # worst case, guaranteed drawable as a negative.
    items = membership.kth_free(users, np.zeros(users.size, dtype=np.int64))
    for seed in range(5):
        sampler = NegativeSampler(dataset, seed=seed)
        candidates = _sample_eval_candidates(sampler, users, items, 6)
        np.testing.assert_array_equal(candidates[:, 0], items)
        assert not (candidates[:, 1:] == candidates[:, :1]).any()


def test_format_replay_mentions_the_essentials():
    result = _run()
    text = format_replay(result)
    assert "HR@3" in text and "NDCG@3" in text
    assert "overall" in text
    assert result.model_name in text


def test_replay_result_to_dict_is_json_shaped():
    import json

    payload = _run().to_dict()
    json.dumps(payload)  # must be serializable as-is
    assert payload["stream_events"] == len(make_tiny_dataset(0).users) - payload["warmup_events"]
