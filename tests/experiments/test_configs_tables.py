"""Tests for experiment scales and table formatting."""

import pytest

from repro.experiments.configs import get_scale
from repro.experiments.tables import format_table


class TestScales:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "quick"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert get_scale().name == "full"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert get_scale("quick").name == "quick"

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("gigantic")

    def test_full_is_larger(self):
        quick, full = get_scale("quick"), get_scale("full")
        assert full.epochs > quick.epochs
        assert full.k > quick.k


class TestFormatTable:
    def test_scalar_values(self):
        results = {"A": {"d1": 0.5, "d2": 0.7}, "B": {"d1": 0.6, "d2": 0.4}}
        text = format_table(results, ["d1", "d2"], title="T")
        assert "T" in text
        assert "0.5000" in text and "0.7000*" in text

    def test_lower_is_better(self):
        results = {"A": {"d": 0.5}, "B": {"d": 0.6}}
        text = format_table(results, ["d"], lower_is_better=True)
        assert "0.5000*" in text
        assert "0.6000*" not in text

    def test_tuple_values(self):
        results = {"A": {"d": (0.5, 0.2)}, "B": {"d": (0.6, 0.1)}}
        text = format_table(results, ["d"])
        assert "0.6000*" in text and "0.2000*" in text
        assert "/" in text

    def test_missing_cell_rendered_as_dash(self):
        results = {"A": {"d1": 0.5}, "B": {}}
        text = format_table(results, ["d1"])
        assert "—" in text

    def test_no_highlight(self):
        results = {"A": {"d": 0.5}}
        text = format_table(results, ["d"], highlight_best=False)
        assert "*" not in text
