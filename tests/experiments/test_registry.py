"""Tests for the model registry."""

import numpy as np
import pytest

from repro.experiments.registry import (
    RATING_MODELS,
    TOPN_MODELS,
    build_model,
    is_pairwise,
)
from tests.helpers import make_tiny_dataset


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset()


class TestRegistry:
    def test_all_rating_models_build(self, ds):
        for name in RATING_MODELS:
            model = build_model(name, ds, k=4, seed=0)
            scores = model.predict(ds.users[:5], ds.items[:5])
            assert np.all(np.isfinite(scores)), name

    def test_all_topn_models_build(self, ds):
        for name in TOPN_MODELS:
            model = build_model(name, ds, k=4, seed=0,
                                train_users=ds.users, train_items=ds.items)
            scores = model.predict(ds.users[:5], ds.items[:5])
            assert np.all(np.isfinite(scores)), name

    def test_unknown_model(self, ds):
        with pytest.raises(KeyError):
            build_model("SVD++", ds)

    def test_pairwise_flags(self):
        assert is_pairwise("BPR-MF")
        assert is_pairwise("NGCF")
        assert not is_pairwise("LibFM")
        assert not is_pairwise("GML-FMdnn")

    def test_gml_variants_distinct(self, ds):
        md = build_model("GML-FMmd", ds, k=4, seed=0)
        dnn = build_model("GML-FMdnn", ds, k=4, seed=0)
        assert md.transform_kind == "mahalanobis"
        assert dnn.transform_kind == "dnn"

    def test_seed_controls_init(self, ds):
        a = build_model("LibFM", ds, k=4, seed=1)
        b = build_model("LibFM", ds, k=4, seed=1)
        c = build_model("LibFM", ds, k=4, seed=2)
        np.testing.assert_allclose(
            a.embeddings.weight.data, b.embeddings.weight.data
        )
        assert not np.allclose(
            a.embeddings.weight.data, c.embeddings.weight.data
        )

    def test_model_lists_cover_paper_tables(self):
        assert len(RATING_MODELS) == 10
        assert len(TOPN_MODELS) == 11
        assert "GML-FMmd" in RATING_MODELS and "GML-FMdnn" in TOPN_MODELS
