"""Tests for the experiment runner (tiny scale)."""

import numpy as np
import pytest

from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import (
    run_rating_cell,
    run_rating_table,
    run_topn_cell,
    run_topn_table,
)
from tests.helpers import make_tiny_dataset

TINY = ExperimentScale(name="tiny", epochs=3, k=8, dataset_scale=0.15,
                       n_candidates=20, n_seeds=1)


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(n_users=20, n_items=25)


class TestRatingCell:
    def test_returns_finite_rmse(self, ds):
        value = run_rating_cell("LibFM", ds, scale=TINY, seed=0)
        assert np.isfinite(value)
        assert 0.0 < value < 2.0

    def test_reproducible(self, ds):
        a = run_rating_cell("MF", ds, scale=TINY, seed=0)
        b = run_rating_cell("MF", ds, scale=TINY, seed=0)
        assert a == b

    def test_gml_fm_runs(self, ds):
        value = run_rating_cell("GML-FMmd", ds, scale=TINY, seed=0)
        assert np.isfinite(value)


class TestTopNCell:
    def test_returns_hr_ndcg(self, ds):
        hr, ndcg = run_topn_cell("LibFM", ds, scale=TINY, seed=0)
        assert 0.0 <= hr <= 1.0
        assert 0.0 <= ndcg <= hr + 1e-9

    def test_pairwise_model(self, ds):
        hr, ndcg = run_topn_cell("BPR-MF", ds, scale=TINY, seed=0)
        assert 0.0 <= hr <= 1.0

    def test_ngcf_uses_training_graph(self, ds):
        hr, ndcg = run_topn_cell("NGCF", ds, scale=TINY, seed=0)
        assert 0.0 <= hr <= 1.0


class TestTables:
    def test_rating_table_structure(self):
        results = run_rating_table(["amazon-auto"], ["MF", "LibFM"], scale=TINY)
        assert set(results) == {"MF", "LibFM"}
        assert "amazon-auto" in results["MF"]

    def test_topn_table_structure(self):
        results = run_topn_table(["amazon-auto"], ["BPR-MF"], scale=TINY)
        hr, ndcg = results["BPR-MF"]["amazon-auto"]
        assert 0.0 <= hr <= 1.0
