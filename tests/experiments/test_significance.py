"""Tests for the paired significance machinery."""

import numpy as np
import pytest

from repro.experiments.configs import ExperimentScale
from repro.experiments.significance import (
    SignificanceResult,
    compare_models,
    paired_t_test,
)
from tests.helpers import make_tiny_dataset

TINY = ExperimentScale(name="tiny", epochs=2, k=8, dataset_scale=0.15,
                       n_candidates=20, n_seeds=1)


class TestPairedTTest:
    def test_identical_samples_not_significant(self):
        t, p = paired_t_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert t == 0.0 and p == 1.0

    def test_clearly_different_samples_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.01, size=10)
        b = rng.normal(1.0, 0.01, size=10)
        _t, p = paired_t_test(a, b)
        assert p < 0.001

    def test_symmetric(self):
        a = [0.1, 0.3, 0.2, 0.4]
        b = [0.2, 0.5, 0.1, 0.6]
        t_ab, p_ab = paired_t_test(a, b)
        t_ba, p_ba = paired_t_test(b, a)
        assert t_ab == pytest.approx(-t_ba)
        assert p_ab == pytest.approx(p_ba)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])

    def test_too_few_observations(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [2.0])


class TestMarkers:
    def _result(self, p):
        return SignificanceResult("A", "B", [0.0], [0.0], 0.0, p)

    def test_dagger_below_001(self):
        assert self._result(0.005).marker() == "†"

    def test_star_below_005(self):
        assert self._result(0.03).marker() == "*"

    def test_empty_otherwise(self):
        assert self._result(0.2).marker() == ""

    def test_means(self):
        result = SignificanceResult("A", "B", [0.2, 0.4], [0.5, 0.7], 0.0, 1.0)
        assert result.mean_a == pytest.approx(0.3)
        assert result.mean_b == pytest.approx(0.6)


class TestCompareModels:
    def test_runs_end_to_end(self):
        ds = make_tiny_dataset(n_users=20, n_items=25)
        result = compare_models("MF", "LibFM", ds, task="topn",
                                seeds=[0, 1, 2], scale=TINY)
        assert len(result.scores_a) == 3
        assert 0.0 <= result.p_value <= 1.0

    def test_rating_task(self):
        ds = make_tiny_dataset(n_users=20, n_items=25)
        result = compare_models("MF", "PMF", ds, task="rating",
                                seeds=[0, 1], scale=TINY)
        assert all(s > 0 for s in result.scores_a)

    def test_unknown_task(self):
        ds = make_tiny_dataset()
        with pytest.raises(ValueError):
            compare_models("MF", "PMF", ds, task="ranking")
