"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.figures import ascii_chart


@pytest.fixture
def simple_series():
    return {
        "A": {1.0: 0.1, 2.0: 0.5, 3.0: 0.9},
        "B": {1.0: 0.9, 2.0: 0.5, 3.0: 0.1},
    }


class TestAsciiChart:
    def test_contains_title_and_legend(self, simple_series):
        out = ascii_chart(simple_series, title="My chart")
        assert "My chart" in out
        assert "o A" in out and "x B" in out

    def test_axis_limits_printed(self, simple_series):
        out = ascii_chart(simple_series)
        assert "0.900" in out
        assert "0.100" in out

    def test_markers_present(self, simple_series):
        out = ascii_chart(simple_series)
        assert out.count("o") >= 3
        assert out.count("x") >= 3

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"A": {}})

    def test_constant_series_handled(self):
        out = ascii_chart({"A": {1.0: 0.5, 2.0: 0.5}})
        assert "A" in out

    def test_single_point(self):
        out = ascii_chart({"A": {1.0: 0.5}})
        assert "o" in out

    def test_dimensions_respected(self, simple_series):
        out = ascii_chart(simple_series, width=30, height=8)
        chart_lines = [l for l in out.splitlines() if "|" in l]
        assert len(chart_lines) == 8

    def test_labels(self, simple_series):
        out = ascii_chart(simple_series, x_label="k", y_label="HR@10")
        assert "HR@10" in out


class TestCli:
    def test_datasets_command(self, capsys):
        from repro.cli import main
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "movielens" in out and "mercari-books" in out

    def test_models_command(self, capsys):
        from repro.cli import main
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "GML-FMdnn" in out

    def test_table2_command(self, capsys):
        from repro.cli import main
        assert main(["table2", "--datasets", "amazon-auto"]) == 0
        out = capsys.readouterr().out
        assert "amazon-auto" in out and "sparsity" in out

    def test_unknown_model_rejected(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["table3", "--models", "SVD++", "--datasets", "amazon-auto"])

    def test_unknown_dataset_rejected(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["table3", "--datasets", "netflix"])
