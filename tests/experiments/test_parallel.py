"""Parallel execution engine: determinism, ordering, worker resolution."""

import numpy as np
import pytest

from repro.data.synthetic import make_dataset
from repro.experiments.configs import ExperimentScale
from repro.experiments.figures import run_embedding_size_sweep
from repro.experiments.parallel import (
    CellSpec,
    available_cpus,
    grid_specs,
    resolve_workers,
    run_cell,
    run_cells,
)
from repro.experiments.runner import run_rating_table, run_topn_table
from repro.experiments.significance import compare_models

TINY = ExperimentScale(name="tiny", epochs=2, k=4, dataset_scale=0.12,
                       n_candidates=10, n_seeds=1)


class TestCellSpec:
    def test_rejects_unknown_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            CellSpec(task="figure", model_name="MF", dataset_key="amazon-auto")

    def test_requires_exactly_one_dataset_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            CellSpec(task="rating", model_name="MF")
        dataset = make_dataset("amazon-auto", seed=0, scale=TINY.dataset_scale)
        with pytest.raises(ValueError, match="exactly one"):
            CellSpec(task="rating", model_name="MF",
                     dataset_key="amazon-auto", dataset=dataset)

    def test_embedded_dataset_matches_key(self):
        # A spec carrying the dataset object returns the same value as
        # one naming the key the worker rebuilds from.
        dataset = make_dataset("amazon-auto", seed=0, scale=TINY.dataset_scale)
        by_key = run_cell(CellSpec(task="rating", model_name="MF",
                                   dataset_key="amazon-auto", scale=TINY))
        by_object = run_cell(CellSpec(task="rating", model_name="MF",
                                      dataset=dataset, scale=TINY))
        assert by_key == by_object


class TestResolveWorkers:
    def test_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert resolve_workers(None) == available_cpus()

    def test_zero_means_all_available_cores(self):
        import os

        assert resolve_workers(0) == available_cpus()
        # Affinity-aware: never more than the raw core count.
        assert available_cpus() <= (os.cpu_count() or 1)

    def test_explicit_count_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2) == 2

    def test_negative_clamps_to_cores(self):
        assert resolve_workers(-4) >= 1


class TestParallelEquivalence:
    """workers > 1 must reproduce the serial tables byte-for-byte."""

    def test_rating_table_2x2_grid(self):
        keys = ["amazon-auto", "mercari-ticket"]
        models = ["MF", "LibFM"]
        serial = run_rating_table(keys, models, scale=TINY, seed=0, workers=1)
        parallel = run_rating_table(keys, models, scale=TINY, seed=0, workers=2)
        assert serial == parallel  # exact float equality, no tolerance

    def test_topn_table_with_pairwise_model(self):
        keys = ["amazon-auto"]
        models = ["BPR-MF", "LibFM"]  # pairwise + pointwise objectives
        serial = run_topn_table(keys, models, scale=TINY, seed=0, workers=1)
        parallel = run_topn_table(keys, models, scale=TINY, seed=0, workers=2)
        assert serial == parallel

    def test_run_cells_preserves_spec_order(self):
        specs = grid_specs("rating", ["LibFM", "MF"],
                           ["mercari-ticket", "amazon-auto"], scale=TINY)
        by_hand = [run_cell(spec) for spec in specs]
        pooled = run_cells(specs, workers=2)
        assert pooled == by_hand

    def test_embedding_sweep_parallel_matches_serial(self):
        curves_serial = run_embedding_size_sweep(
            ["amazon-auto"], ["LibFM"], [4, 8], scale=TINY, workers=1)
        curves_parallel = run_embedding_size_sweep(
            ["amazon-auto"], ["LibFM"], [4, 8], scale=TINY, workers=2)
        assert curves_serial == curves_parallel
        assert set(curves_serial["amazon-auto"]["LibFM"]) == {4, 8}

    def test_compare_models_parallel_matches_serial(self):
        dataset = make_dataset("amazon-auto", seed=0, scale=TINY.dataset_scale)
        serial = compare_models("MF", "LibFM", dataset, task="rating",
                                seeds=[0, 1], scale=TINY, workers=1)
        parallel = compare_models("MF", "LibFM", dataset, task="rating",
                                  seeds=[0, 1], scale=TINY, workers=2)
        assert serial.scores_a == parallel.scores_a
        assert serial.scores_b == parallel.scores_b
        assert serial.p_value == parallel.p_value


class TestTableAssembly:
    def test_workers_parameter_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        results = run_rating_table(["amazon-auto"], ["MF"], scale=TINY)
        assert np.isfinite(results["MF"]["amazon-auto"])

    def test_grid_specs_cover_the_table(self):
        specs = grid_specs("topn", ["A", "B"], ["x", "y"], scale=TINY, seed=3)
        assert [(s.model_name, s.dataset_key) for s in specs] == [
            ("A", "x"), ("A", "y"), ("B", "x"), ("B", "y")]
        assert all(s.seed == 3 and s.task == "topn" for s in specs)
