"""Tests for the custom-model runners used by the ablation benchmarks."""

import numpy as np
import pytest

from repro.core.gml_fm import GMLFM
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import run_custom_rating, run_custom_topn
from tests.helpers import make_tiny_dataset

TINY = ExperimentScale(name="tiny", epochs=3, k=8, dataset_scale=0.15,
                       n_candidates=20, n_seeds=1)


@pytest.fixture(scope="module")
def ds():
    return make_tiny_dataset(n_users=20, n_items=25)


def _build(ds, rng):
    return GMLFM(ds, k=8, transform="identity", rng=rng)


class TestCustomRunners:
    def test_custom_rating_returns_rmse(self, ds):
        value = run_custom_rating(_build, ds, scale=TINY)
        assert np.isfinite(value) and value > 0

    def test_custom_topn_returns_pair(self, ds):
        hr, ndcg = run_custom_topn(_build, ds, scale=TINY)
        assert 0.0 <= hr <= 1.0
        assert 0.0 <= ndcg <= hr + 1e-9

    def test_factory_receives_seeded_rng(self, ds):
        seen = []

        def build(dataset, rng):
            seen.append(rng.normal())
            return _build(dataset, np.random.default_rng(0))

        run_custom_rating(build, ds, scale=TINY, seed=5)
        run_custom_rating(build, ds, scale=TINY, seed=5)
        assert seen[0] == seen[1]

    def test_deterministic(self, ds):
        a = run_custom_topn(_build, ds, scale=TINY, seed=1)
        b = run_custom_topn(_build, ds, scale=TINY, seed=1)
        assert a == b
