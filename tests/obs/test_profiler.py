"""Op profiler: patch/restore hygiene and real training attribution."""

import numpy as np
import pytest

from repro.autograd import ops, sparse
from repro.autograd.tensor import Tensor
from repro.obs.profiler import OpProfiler, profile

pytestmark = pytest.mark.obs


def profile_surface():
    """(owner, attr) pairs the profiler is declared to patch."""
    pairs = [(Tensor, m) for m in Tensor.PROFILE_METHODS]
    pairs += [(ops, f) for f in ops.PROFILE_FUNCTIONS]
    pairs += [(sparse, f) for f in sparse.PROFILE_FUNCTIONS]
    pairs.append((Tensor, "_make"))
    return pairs


class TestPatchHygiene:
    def test_patches_applied_then_restored(self):
        originals = {(o, a): getattr(o, a) for o, a in profile_surface()}
        with profile():
            changed = [a for (o, a), fn in originals.items()
                       if getattr(o, a) is not fn]
            assert len(changed) == len(originals)
        for (owner, attr), fn in originals.items():
            assert getattr(owner, attr) is fn

    def test_restored_on_exception(self):
        original_make = Tensor._make
        with pytest.raises(RuntimeError, match="boom"):
            with profile():
                raise RuntimeError("boom")
        assert Tensor._make is original_make

    def test_nesting_raises_and_outer_survives(self):
        original_make = Tensor._make
        with profile():
            with pytest.raises(RuntimeError, match="already active"):
                with profile():
                    pass
            assert Tensor._make is not original_make
        assert Tensor._make is original_make


class TestAttribution:
    def test_forward_backward_and_alloc_recorded(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        b = Tensor(rng.normal(size=(16, 8)), requires_grad=True)
        with profile() as prof:
            loss = ((a * b).sum() + (a + b).sum()) * Tensor(0.5)
            loss.backward()
        stats = {row["op"]: row for row in prof.summary()}
        for op in ("mul", "add", "sum"):
            assert stats[op]["calls"] >= 1
            assert stats[op]["forward_s"] >= 0.0
            assert stats[op]["backward_calls"] >= 1
            assert stats[op]["tensors"] >= 1
        assert stats["mul"]["bytes"] >= 16 * 8 * 8  # float64 output

    def test_nothing_recorded_outside_context(self):
        with profile() as prof:
            pass
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        (a * a).sum().backward()
        # Zero-count entries exist from patch time, but nothing ran
        # inside the context, so no activity may be attributed.
        assert all(s.calls == 0 and s.tensors == 0 and s.backward_calls == 0
                   for s in prof.stats.values())

    def test_summary_sorted_and_truncated(self):
        with profile() as prof:
            pass
        prof._stat("fast").forward_s = 0.001
        prof._stat("slow").forward_s = 0.5
        prof._stat("mid").backward_s = 0.1
        rows = prof.summary(top=2)
        assert [r["op"] for r in rows] == ["slow", "mid"]
        assert rows[0]["total_s"] == pytest.approx(0.5)

    def test_format_is_a_table(self):
        with profile() as prof:
            a = Tensor(np.ones((8, 8)), requires_grad=True)
            (a * a).sum().backward()
        text = prof.format(top=5)
        assert "op" in text.splitlines()[0]
        assert "mul" in text
        assert "wall" in text.splitlines()[-1]

    def test_real_training_step_attributes_hot_ops(self):
        from repro.data.synthetic import make_dataset
        from repro.experiments.registry import build_model
        from repro.training.trainer import TrainConfig, Trainer

        corpus = make_dataset("amazon-auto", seed=0, scale=0.1)
        model = build_model("MF", corpus, k=4, seed=0)
        rng = np.random.default_rng(0)
        users = rng.integers(0, corpus.n_users, size=256)
        items = rng.integers(0, corpus.n_items, size=256)
        labels = (2.0 * rng.integers(0, 2, size=256) - 1.0)
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=128))
        with profile() as prof:
            trainer.fit_pointwise(users, items, labels)
        summary = prof.summary(top=5)
        assert summary, "training produced no profiled ops"
        assert all(row["total_s"] >= 0.0 for row in summary)
        assert any(row["backward_calls"] > 0 for row in summary)
