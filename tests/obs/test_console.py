"""Console surfaces as pure functions: render_top and bench report."""

import argparse
import json

import pytest

import repro.obs.console as console
from repro.obs.console import (
    _measured,
    _status,
    bench_report_main,
    format_report,
    load_records,
    render_top,
    top_main,
)
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


def make_sample(t=100.0, requests=40, with_latency=True, cluster=None):
    registry = MetricsRegistry()
    if with_latency:
        hist = registry.histogram("repro_request_seconds",
                                  boundaries=(0.001, 0.01, 0.1))
        for _ in range(10):
            hist.observe(0.005)
    stats = {
        "model": "MF", "dataset": "amazon-auto",
        "n_users": 700, "n_items": 120,
        "fast_path": True, "ann": False, "online_updates": True,
        "requests": requests, "users_scored": requests * 2,
        "ann_fallbacks": 0,
        "interactions_added": 8, "updates_folded_in": 1,
        "cache": {"size": 3, "capacity": 64, "hit_rate": 0.5,
                  "evictions": 1, "invalidations": 2},
    }
    if cluster is not None:
        stats["cluster"] = cluster
    return {"t": t, "stats": stats, "metrics": registry.snapshot()}


class TestRenderTop:
    def test_single_sample_screen(self):
        text = render_top(make_sample(), url="http://x:1")
        assert "MF on amazon-auto @ http://x:1" in text
        assert "700 users" in text
        assert "3/64 entries   hit_rate 50.0%" in text
        assert "p50 " in text and "10 samples" in text
        assert "cluster" not in text

    def test_rates_from_successive_samples(self):
        prev = make_sample(t=100.0, requests=40)
        now = make_sample(t=102.0, requests=50)
        line = [ln for ln in render_top(now, prev).splitlines()
                if ln.startswith("requests")][0]
        assert "5.0/s" in line

    def test_no_latency_samples(self):
        text = render_top(make_sample(with_latency=False))
        assert "(no request samples yet)" in text

    def test_cluster_line(self):
        cluster = {"shards": 2, "replicas": 2, "alive": 3,
                   "requests_routed": 9, "failovers": 1}
        text = render_top(make_sample(cluster=cluster))
        assert "2 shards x 2 replicas   alive 3" in text
        assert "failovers 1" in text


class TestLoadRecords:
    def test_reads_json_files_with_provenance(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps(
            [{"benchmark": "x", "speedup": 2.0}]))
        (tmp_path / "b.json").write_text(json.dumps(
            {"benchmark": "y", "gate_passed": True}))
        (tmp_path / "junk.json").write_text("{not json")
        (tmp_path / "notes.txt").write_text("ignored")
        records = load_records(str(tmp_path))
        assert [(r["benchmark"], r["_file"]) for r in records] == \
            [("x", "a.json"), ("y", "b.json")]

    def test_missing_dir_is_empty(self, tmp_path):
        assert load_records(str(tmp_path / "absent")) == []


class TestStatusAndMeasured:
    def test_measured_precedence_and_fallback(self):
        assert _measured({"speedup": 2.5}) == 2.5
        assert _measured({"cold_vs_warm_speedup": 3.0}) == 3.0
        assert _measured({"benchmark": "x"}) is None

    def test_status_variants(self):
        assert _status({"gate": "skipped: no runner"}) == "skip"
        assert _status({"gate_passed": True}) == "pass"
        assert _status({"gate_passed": False}) == "FAIL"
        assert _status({"benchmark": "coverage",
                        "percent": 90.0, "threshold": 85.0}) == "pass"
        assert _status({"benchmark": "coverage",
                        "percent": 80.0, "threshold": 85.0}) == "FAIL"
        assert _status({"benchmark": "x"}) == "--"


class TestEntryPoints:
    def top_args(self, **overrides):
        base = {"url": "http://127.0.0.1:1", "interval": 0.1,
                "iterations": 0, "once": False}
        return argparse.Namespace(**{**base, **overrides})

    def test_top_main_renders_n_iterations(self, monkeypatch, capsys):
        samples = iter([make_sample(t=1.0, requests=10),
                        make_sample(t=2.0, requests=30)])
        monkeypatch.setattr(console, "sample_server",
                            lambda url, timeout=10.0: next(samples))
        assert top_main(self.top_args(iterations=2)) == 0
        out = capsys.readouterr().out
        assert out.count("repro top — MF on amazon-auto") == 2
        assert "20.0/s" in out  # rate between the two samples

    def test_top_main_once(self, monkeypatch, capsys):
        monkeypatch.setattr(console, "sample_server",
                            lambda url, timeout=10.0: make_sample())
        assert top_main(self.top_args(once=True)) == 0
        assert capsys.readouterr().out.count("repro top") == 1

    def test_top_main_unreachable_server(self, capsys):
        # Nothing listens on the reserved port; top must report, not
        # traceback.
        assert top_main(self.top_args(once=True)) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_bench_report_main_exit_codes(self, tmp_path, capsys):
        args = argparse.Namespace(results_dir=str(tmp_path))
        assert bench_report_main(args) == 0
        assert "no benchmark records" in capsys.readouterr().out
        (tmp_path / "r.json").write_text(json.dumps(
            [{"benchmark": "ok", "speedup": 2.0, "gate": ">=1x",
              "gate_passed": True},
             {"benchmark": "bad", "speedup": 0.5, "gate": ">=1x",
              "gate_passed": False}]))
        assert bench_report_main(args) == 1
        out = capsys.readouterr().out
        assert "2 records: 1 pass" in out


class TestFormatReport:
    def test_empty(self):
        assert "no benchmark records found" in format_report([])

    def test_table_rows_and_footer(self):
        records = [
            {"benchmark": "serving", "speedup": 1.42,
             "gate": ">= 0.97x", "gate_passed": True, "_file": "s.json"},
            {"benchmark": "coverage", "percent": 91.3, "threshold": 85.0,
             "_file": "c.json"},
            {"benchmark": "broken", "speedup": 0.5, "gate": ">= 2x",
             "gate_passed": False, "_file": "b.json"},
        ]
        text = format_report(records)
        assert "1.42x" in text and "91.3%" in text
        assert "FAIL" in text
        assert "3 records: 2 pass, 0 skipped, 1 failed, 0 ungated" in text
