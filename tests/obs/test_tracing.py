"""Tracer contracts: opt-in cost model, nesting, forcing, bounded ring."""

import threading

import pytest

from repro.obs.tracing import Tracer, _NULL_CONTEXT

pytestmark = pytest.mark.obs


class TestDisabled:
    def test_start_and_span_are_shared_noops(self):
        tracer = Tracer(enabled=False)
        assert tracer.start("req") is _NULL_CONTEXT
        assert tracer.span("section") is _NULL_CONTEXT
        with tracer.start("req"):
            pass
        assert tracer.traces() == []

    def test_forced_trace_id_overrides_disabled(self):
        tracer = Tracer(enabled=False)
        with tracer.start("remote_op", trace_id="deadbeefdeadbeef"):
            with tracer.span("inner"):
                pass
        (trace,) = tracer.traces()
        assert trace["trace_id"] == "deadbeefdeadbeef"
        assert [s["name"] for s in trace["spans"]] == ["inner"]


class TestEnabled:
    def test_trace_collects_spans_with_offsets(self):
        tracer = Tracer(enabled=True)
        with tracer.start("recommend") as trace:
            assert tracer.current() is trace
            with tracer.span("cache_lookup", users=3):
                pass
            with tracer.span("rerank"):
                pass
        assert tracer.current() is None
        (exported,) = tracer.traces()
        assert exported["name"] == "recommend"
        assert len(exported["trace_id"]) == 16
        names = [s["name"] for s in exported["spans"]]
        assert names == ["cache_lookup", "rerank"]
        assert exported["spans"][0]["tags"] == {"users": 3}
        assert exported["duration_ms"] >= 0.0

    def test_trace_ids_unique(self):
        tracer = Tracer(enabled=True)
        for _ in range(50):
            with tracer.start("req"):
                pass
        ids = [t["trace_id"] for t in tracer.traces()]
        assert len(set(ids)) == 50

    def test_nested_start_becomes_child_span(self):
        # The cross-process shape: the router owns the trace, the
        # service's own start() must nest instead of clobbering it.
        tracer = Tracer(enabled=True)
        with tracer.start("router_op") as trace:
            with tracer.start("service_op"):
                with tracer.span("deep"):
                    pass
            assert tracer.current() is trace
        (exported,) = tracer.traces()
        assert exported["name"] == "router_op"
        assert {"service_op", "deep"} <= {s["name"] for s in exported["spans"]}

    def test_ring_is_bounded_newest_first(self):
        tracer = Tracer(enabled=True, capacity=4)
        for index in range(10):
            with tracer.start(f"req{index}"):
                pass
        names = [t["name"] for t in tracer.traces()]
        assert names == ["req9", "req8", "req7", "req6"]
        assert [t["name"] for t in tracer.traces(2)] == ["req9", "req8"]

    def test_absorb_remote_spans_with_prefix_and_tags(self):
        tracer = Tracer(enabled=True)
        remote = [{"name": "rerank", "start_ms": 1.0, "duration_ms": 2.0}]
        with tracer.start("router_op") as trace:
            trace.absorb(remote, prefix="s0r1:", shard=0, replica=1)
        (exported,) = tracer.traces()
        (span,) = exported["spans"]
        assert span["name"] == "s0r1:rerank"
        assert span["tags"] == {"shard": 0, "replica": 1}

    def test_thread_isolation(self):
        tracer = Tracer(enabled=True)
        seen = {}

        def worker(name):
            with tracer.start(name):
                seen[name] = tracer.current().name

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {f"t{i}": f"t{i}" for i in range(4)}

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)
