"""JsonLogger: level filtering, bound context, atomic JSON lines."""

import io
import json
import threading

import pytest

from repro.obs.logs import JsonLogger, default_logger

pytestmark = pytest.mark.obs


def lines(stream):
    return [json.loads(line) for line in
            stream.getvalue().splitlines() if line]


class TestJsonLogger:
    def test_event_shape_and_reserved_fields(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream)
        log.info("replica_spawn", shard=0, replica=1, pid=4242)
        (record,) = lines(stream)
        assert record["level"] == "info"
        assert record["event"] == "replica_spawn"
        assert record["shard"] == 0 and record["pid"] == 4242
        assert isinstance(record["ts"], float)

    def test_min_level_filters(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream, min_level="warning")
        log.debug("d")
        log.info("i")
        log.warning("w")
        log.error("e")
        assert [r["event"] for r in lines(stream)] == ["w", "e"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown level"):
            JsonLogger(min_level="loud")

    def test_bind_carries_context_and_allows_override(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream).bind(component="cluster")
        log.info("heartbeat_miss", shard=2)
        log.bind(component="router").info("routed")
        first, second = lines(stream)
        assert first["component"] == "cluster" and first["shard"] == 2
        assert second["component"] == "router"

    def test_concurrent_writes_stay_line_atomic(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream)

        def worker(i):
            for j in range(200):
                log.info("tick", worker=i, seq=j, pad="x" * 64)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = lines(stream)  # json.loads raises if any line split
        assert len(records) == 6 * 200

    def test_closed_stream_swallowed(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream)
        stream.close()
        log.error("late_event")  # must not raise

    def test_lazy_stderr_resolution(self, capsys):
        JsonLogger(stream=None, min_level="info").info("to_stderr")
        (record,) = [json.loads(line) for line in
                     capsys.readouterr().err.splitlines()]
        assert record["event"] == "to_stderr"


def test_default_logger_is_shared_and_quiet():
    log = default_logger()
    assert log is default_logger()
    assert log.min_level == "warning"
