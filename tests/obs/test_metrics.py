"""Metrics registry: exactness under threads, quantiles, exposition.

The contracts the serving plane leans on: an N-thread hammer observes
the exact total (no lost increments), histogram percentiles are
monotone in q, snapshots merge across processes by summation, and the
Prometheus text output is byte-stable (golden-pinned).
"""

import math
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    default_latency_buckets,
    merge_snapshots,
    render_snapshot,
    snapshot_quantile,
)

pytestmark = pytest.mark.obs


def hammer(n_threads, fn):
    threads = [threading.Thread(target=fn) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestCounter:
    def test_exact_total_under_threads(self):
        counter = Counter("c")
        hammer(8, lambda: [counter.inc() for _ in range(5000)])
        assert counter.value == 8 * 5000

    def test_weighted_increments(self):
        counter = Counter("c")
        counter.inc(3)
        counter.inc(0.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_collect_callback_reads_live(self):
        backing = [1, 2, 3]
        gauge = Gauge("g", collect=lambda: len(backing))
        assert gauge.value == 3
        backing.append(4)
        assert gauge.snapshot()["value"] == 4


class TestHistogram:
    def test_exact_count_and_sum_under_threads(self):
        hist = Histogram("h")
        hammer(8, lambda: [hist.observe(0.001 * (i % 7 + 1))
                           for i in range(4000)])
        assert hist.count == 8 * 4000
        expected = 8 * sum(0.001 * (i % 7 + 1) for i in range(4000))
        assert hist.sum == pytest.approx(expected)

    def test_percentiles_monotone(self):
        hist = Histogram("h")
        for i in range(1, 2000):
            hist.observe(i / 1000.0)
        quantiles = [hist.quantile(q) for q in
                     (0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0)]
        assert quantiles == sorted(quantiles)
        assert hist.quantile(0.5) == pytest.approx(1.0, rel=0.5)

    def test_overflow_bucket_reports_max(self):
        hist = Histogram("h", boundaries=(1.0, 2.0))
        hist.observe(50.0)
        hist.observe(70.0)
        assert hist.quantile(0.99) == 70.0

    def test_empty_is_nan(self):
        assert math.isnan(Histogram("h").quantile(0.5))

    def test_timer_observes_once(self):
        hist = Histogram("h")
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.sum >= 0.0

    def test_default_buckets_span_microseconds_to_seconds(self):
        bounds = default_latency_buckets()
        assert bounds[0] < 1e-4 < 1.0 < bounds[-1]
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_bad_boundaries_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", boundaries=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", labels={"x": "1"}) is not \
            registry.counter("a")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_null_registry_is_free_and_silent(self):
        counter = NULL_REGISTRY.counter("a")
        counter.inc(100)
        assert counter.value == 0.0
        with NULL_REGISTRY.histogram("h").time():
            pass
        assert NULL_REGISTRY.snapshot() == []
        assert NULL_REGISTRY.render() == ""


class TestMerge:
    def snapshots(self):
        registries = []
        for _ in range(3):
            registry = MetricsRegistry()
            registry.counter("reqs").inc(10)
            hist = registry.histogram("lat", boundaries=(0.1, 1.0))
            hist.observe(0.05)
            hist.observe(5.0)
            registries.append(registry)
        return [r.snapshot() for r in registries]

    def test_counters_and_histograms_sum(self):
        merged = merge_snapshots(self.snapshots())
        by_name = {e["name"]: e for e in merged}
        assert by_name["reqs"]["value"] == 30
        assert by_name["lat"]["count"] == 6
        assert by_name["lat"]["counts"] == [3, 0, 3]
        assert snapshot_quantile(by_name["lat"], 0.99) == 5.0

    def test_type_conflict_raises(self):
        a = [Counter("m").snapshot()]
        b = [Gauge("m").snapshot()]
        with pytest.raises(ValueError, match="conflicting types"):
            merge_snapshots([a, b])

    def test_boundary_mismatch_raises(self):
        a = [Histogram("h", boundaries=(1.0,)).snapshot()]
        b = [Histogram("h", boundaries=(2.0,)).snapshot()]
        with pytest.raises(ValueError, match="mismatched"):
            merge_snapshots([a, b])


class TestExposition:
    def test_golden_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "users requested").inc(4)
        registry.gauge("repro_train_loss", "last loss").set(0.25)
        hist = registry.histogram("repro_request_seconds", "latency",
                                  boundaries=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 2.0):
            hist.observe(value)
        assert registry.render() == (
            "# HELP repro_requests_total users requested\n"
            "# TYPE repro_requests_total counter\n"
            "repro_requests_total 4\n"
            "# HELP repro_train_loss last loss\n"
            "# TYPE repro_train_loss gauge\n"
            "repro_train_loss 0.25\n"
            "# HELP repro_request_seconds latency\n"
            "# TYPE repro_request_seconds histogram\n"
            'repro_request_seconds_bucket{le="0.01"} 2\n'
            'repro_request_seconds_bucket{le="0.1"} 3\n'
            'repro_request_seconds_bucket{le="1"} 3\n'
            'repro_request_seconds_bucket{le="+Inf"} 4\n'
            "repro_request_seconds_sum 2.06\n"
            "repro_request_seconds_count 4\n"
        )

    def test_labels_rendered_sorted(self):
        entry = Counter("c", labels={"shard": "1", "b": "x"}).snapshot()
        text = render_snapshot([entry])
        assert 'c{b="x",shard="1"} 0' in text

    def test_header_emitted_once_per_family(self):
        entries = [Counter("c", labels={"shard": str(i)}).snapshot()
                   for i in range(3)]
        text = render_snapshot(entries)
        assert text.count("# TYPE c counter") == 1
